//! Boundary inference from error propagation — Algorithm 1 and the §3.5
//! filter operation.
//!
//! For every **masked** experiment in the sample set, the faulty run is
//! re-executed through the injector's extraction path (streamed by
//! default — see `ftb_inject::extraction`) and its propagation errors are
//! folded into the boundary as a per-site running max (Algorithm 1):
//!
//! ```text
//! for each sample s_i in s:
//!     if s_i is Masked:
//!         for j in 0..n: Δe_j = max(Δe_j, s_i[j])
//! ```
//!
//! The **filter operation** guards against non-monotonic behaviour: a
//! masked propagation value at site `j` larger than the smallest injected
//! error already *known to cause SDC* at `j` is discarded rather than
//! folded — without it, one lucky masked run can raise the threshold
//! above genuinely dangerous errors and drag prediction precision down
//! (the paper's Figure 5, top row, CG).
//!
//! Re-running masked experiments instead of storing their propagation
//! vectors keeps memory at `O(n_sites)` (storing them would be
//! `O(masked × n_sites)`); runs fan out over Rayon and per-thread partial
//! boundaries merge by pointwise max, which is associative and
//! commutative, so the result is deterministic regardless of scheduling.

use crate::boundary::Boundary;
use crate::sample::SampleSet;
use ftb_inject::{fold_propagation_lockstep, Injector};
use ftb_kernels::Kernel;
use ftb_trace::norms::relative_error;
use ftb_trace::FaultSpec;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Denominator floor for the relative-significance test (the paper flags
/// perturbations with relative error above `1e-8`).
const REL_FLOOR: f64 = 1e-12;

/// The §4.2 significance threshold for "potential impact" accounting.
pub const SIGNIFICANT_REL_ERR: f64 = 1e-8;

/// How the §3.5 filter operation is applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FilterMode {
    /// No filtering — raw Algorithm 1 (the paper's Figure 5, top row).
    Off,
    /// Discard a masked propagation value at site `j` exceeding the
    /// smallest injected error known to cause SDC *at `j`* (default).
    PerSite,
    /// Discard masked propagation values exceeding the smallest injected
    /// error known to cause SDC *anywhere* (ablation: the strictest
    /// reading of "any known SDC cases").
    Global,
}

/// Result of boundary inference: the boundary plus the per-site
/// information accounting used by Figure 4 (row 2) and the adaptive
/// sampler.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Inference {
    /// The inferred fault tolerance boundary.
    pub boundary: Boundary,
    /// Per site: how many masked runs propagated a *significant*
    /// perturbation (relative error > 1e-8) to it.
    pub prop_hits: Vec<u32>,
    /// Per site: how many injections with significant injected error were
    /// performed there.
    pub sig_injections: Vec<u32>,
}

impl Inference {
    /// The paper's "potential impact" of a site on the prediction:
    /// significant injections plus significant propagation visits.
    pub fn potential_impact(&self, site: usize) -> u32 {
        self.prop_hits[site] + self.sig_injections[site]
    }

    /// The §3.4 information count `S_i` (never zero; the bias weight is
    /// `1 / S_i`).
    pub fn information(&self, site: usize) -> u32 {
        1 + self.prop_hits[site] + self.sig_injections[site]
    }
}

/// Infer the fault tolerance boundary from a sample set (Algorithm 1 +
/// optional filter operation). See the module docs for the mechanics.
pub fn infer_boundary(
    injector: &Injector<'_>,
    samples: &SampleSet,
    filter: FilterMode,
) -> Inference {
    let n_sites = injector.n_sites();
    let golden = injector.golden();

    // Filter thresholds from the known SDC cases.
    let min_sdc: Option<Vec<f64>> = match filter {
        FilterMode::Off => None,
        FilterMode::PerSite => Some(samples.min_sdc_injected(n_sites)),
        FilterMode::Global => Some(vec![samples.min_sdc_injected_global(); n_sites]),
    };

    // Parallel fold over masked experiments: each re-runs through the
    // injector's extraction path (buffered, lockstep or streamed — the
    // folds are identical) into a thread-local partial.
    let masked: Vec<_> = samples.masked().collect();
    let partial = masked
        .par_iter()
        .fold(
            || (Boundary::zero(n_sites), vec![0u32; n_sites]),
            |(mut b, mut hits), e| {
                injector.extract_propagation(e.site, e.bit, |site, err| {
                    // strictly below: a perturbation equal to an error
                    // already known to cause SDC must not certify masked
                    let passes = match &min_sdc {
                        None => true,
                        Some(mins) => err < mins[site],
                    };
                    if passes {
                        b.observe(site, err);
                    }
                    if relative_error(golden.value(site), golden.value(site) + err, REL_FLOOR)
                        > SIGNIFICANT_REL_ERR
                    {
                        hits[site] += 1;
                    }
                });
                (b, hits)
            },
        )
        .reduce(
            || (Boundary::zero(n_sites), vec![0u32; n_sites]),
            |(mut b1, mut h1), (b2, h2)| {
                b1.merge(&b2);
                for (a, b) in h1.iter_mut().zip(&h2) {
                    *a += b;
                }
                (b1, h1)
            },
        );
    let (boundary, prop_hits) = partial;

    // Significant-injection counts (pure bookkeeping, no runs needed).
    let mut sig_injections = vec![0u32; n_sites];
    for e in samples.experiments() {
        let v = golden.value(e.site);
        if relative_error(v, v + e.injected_err, REL_FLOOR) > SIGNIFICANT_REL_ERR {
            sig_injections[e.site] += 1;
        }
    }

    Inference {
        boundary,
        prop_hits,
        sig_injections,
    }
}

/// Memory-bounded variant of [`infer_boundary`]: masked experiments are
/// re-executed in **lockstep** with a golden duplicate (see
/// `ftb_inject::lockstep`), so no faulty value trace is ever materialised
/// — peak extra memory is `O(capacity)` per experiment instead of
/// `O(n_sites)`. This implements the paper's §5 "computation duplication"
/// direction; results are identical to [`infer_boundary`].
///
/// Runs serially (each lockstep extraction already uses two threads).
pub fn infer_boundary_streaming(
    kernel: &dyn Kernel,
    injector: &Injector<'_>,
    samples: &SampleSet,
    filter: FilterMode,
    capacity: usize,
) -> Inference {
    let n_sites = injector.n_sites();
    let golden = injector.golden();

    let min_sdc: Option<Vec<f64>> = match filter {
        FilterMode::Off => None,
        FilterMode::PerSite => Some(samples.min_sdc_injected(n_sites)),
        FilterMode::Global => Some(vec![samples.min_sdc_injected_global(); n_sites]),
    };

    let mut boundary = Boundary::zero(n_sites);
    let mut prop_hits = vec![0u32; n_sites];
    for e in samples.masked() {
        let classifier = *injector.classifier();
        fold_propagation_lockstep(
            kernel,
            FaultSpec {
                site: e.site,
                bit: e.bit,
            },
            &classifier,
            capacity,
            |site, err| {
                let passes = match &min_sdc {
                    None => true,
                    Some(mins) => err < mins[site],
                };
                if passes {
                    boundary.observe(site, err);
                }
                if relative_error(golden.value(site), golden.value(site) + err, REL_FLOOR)
                    > SIGNIFICANT_REL_ERR
                {
                    prop_hits[site] += 1;
                }
            },
        );
    }

    let mut sig_injections = vec![0u32; n_sites];
    for e in samples.experiments() {
        let v = golden.value(e.site);
        if relative_error(v, v + e.injected_err, REL_FLOOR) > SIGNIFICANT_REL_ERR {
            sig_injections[e.site] += 1;
        }
    }

    Inference {
        boundary,
        prop_hits,
        sig_injections,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::SampleSet;
    use ftb_inject::{Classifier, Experiment, Outcome};
    use ftb_kernels::{MatvecConfig, MatvecKernel, StencilConfig, StencilKernel};

    fn stencil_injector(k: &StencilKernel) -> Injector<'_> {
        Injector::new(k, Classifier::new(1e-6))
    }

    #[test]
    fn masked_injection_raises_threshold_at_its_own_site() {
        let k = StencilKernel::new(StencilConfig::small());
        let inj = stencil_injector(&k);
        // a low-mantissa flip somewhere in the first sweep: masked
        let site = k.config().grid * k.config().grid + 15;
        let e = inj.run_one(site, 20);
        assert_eq!(e.outcome, Outcome::Masked);
        let mut s = SampleSet::new();
        s.insert(e);
        let inf = infer_boundary(&inj, &s, FilterMode::Off);
        assert!(
            inf.boundary.threshold(site) >= e.injected_err,
            "threshold {} below injected {}",
            inf.boundary.threshold(site),
            e.injected_err
        );
        // and the error propagated forward to later sites
        let downstream = (site + 1..inj.n_sites())
            .filter(|&j| inf.boundary.threshold(j) > 0.0)
            .count();
        assert!(downstream > 0, "no propagation recorded downstream");
    }

    #[test]
    fn sdc_experiments_contribute_nothing_to_the_boundary() {
        let k = MatvecKernel::new(MatvecConfig {
            n: 4,
            ..MatvecConfig::small()
        });
        let inj = Injector::new(&k, Classifier::new(1e-6));
        let e = inj.run_one(0, 63); // sign flip of A element: SDC
        assert!(e.outcome.is_sdc());
        let mut s = SampleSet::new();
        s.insert(e);
        let inf = infer_boundary(&inj, &s, FilterMode::Off);
        assert_eq!(inf.boundary.coverage(), 0.0);
    }

    #[test]
    fn per_site_filter_caps_thresholds_below_known_sdc() {
        let k = StencilKernel::new(StencilConfig::small());
        let inj = stencil_injector(&k);
        let samples = SampleSet::sample_sites_one_bit(&inj, inj.n_sites() / 2, 5);
        let unfiltered = infer_boundary(&inj, &samples, FilterMode::Off);
        let filtered = infer_boundary(&inj, &samples, FilterMode::PerSite);
        let mins = samples.min_sdc_injected(inj.n_sites());
        for (site, &min_sdc) in mins.iter().enumerate() {
            assert!(
                filtered.boundary.threshold(site) <= min_sdc,
                "filtered threshold above known SDC error at {site}"
            );
            assert!(
                filtered.boundary.threshold(site) <= unfiltered.boundary.threshold(site),
                "filtering must only lower thresholds"
            );
        }
    }

    #[test]
    fn global_filter_is_at_least_as_strict_as_per_site() {
        let k = StencilKernel::new(StencilConfig::small());
        let inj = stencil_injector(&k);
        let samples = SampleSet::sample_sites_one_bit(&inj, inj.n_sites() / 2, 6);
        let per_site = infer_boundary(&inj, &samples, FilterMode::PerSite);
        let global = infer_boundary(&inj, &samples, FilterMode::Global);
        for site in 0..inj.n_sites() {
            assert!(global.boundary.threshold(site) <= per_site.boundary.threshold(site));
        }
    }

    #[test]
    fn inference_is_deterministic_under_parallelism() {
        let k = StencilKernel::new(StencilConfig::small());
        let inj = stencil_injector(&k);
        let samples = SampleSet::sample_sites(&inj, 40, 11);
        let a = infer_boundary(&inj, &samples, FilterMode::PerSite);
        let b = infer_boundary(&inj, &samples, FilterMode::PerSite);
        assert_eq!(a.boundary, b.boundary);
        assert_eq!(a.prop_hits, b.prop_hits);
    }

    #[test]
    fn information_count_is_positive_everywhere() {
        let k = MatvecKernel::new(MatvecConfig {
            n: 4,
            ..MatvecConfig::small()
        });
        let inj = Injector::new(&k, Classifier::new(1e-6));
        let mut s = SampleSet::new();
        s.insert(Experiment {
            site: 0,
            bit: 0,
            injected_err: 0.0,
            output_err: 0.0,
            outcome: Outcome::Masked,
        });
        let inf = infer_boundary(&inj, &s, FilterMode::Off);
        for site in 0..inj.n_sites() {
            assert!(inf.information(site) >= 1);
        }
    }

    #[test]
    fn streaming_inference_matches_buffered_exactly() {
        let k = StencilKernel::new(StencilConfig {
            grid: 8,
            sweeps: 4,
            ..StencilConfig::small()
        });
        let inj = stencil_injector(&k);
        let samples = SampleSet::sample_sites(&inj, 6, 9);
        for filter in [FilterMode::Off, FilterMode::PerSite] {
            let buffered = infer_boundary(&inj, &samples, filter);
            let streamed = infer_boundary_streaming(&k, &inj, &samples, filter, 32);
            assert_eq!(buffered.boundary, streamed.boundary, "filter {filter:?}");
            assert_eq!(buffered.prop_hits, streamed.prop_hits);
            assert_eq!(buffered.sig_injections, streamed.sig_injections);
        }
    }

    #[test]
    fn empty_sample_set_yields_zero_boundary() {
        let k = MatvecKernel::new(MatvecConfig {
            n: 4,
            ..MatvecConfig::small()
        });
        let inj = Injector::new(&k, Classifier::new(1e-6));
        let inf = infer_boundary(&inj, &SampleSet::new(), FilterMode::PerSite);
        assert_eq!(inf.boundary.coverage(), 0.0);
        assert!(inf.prop_hits.iter().all(|&h| h == 0));
    }
}
