//! Selective-protection planning — the downstream use case the paper's
//! introduction motivates.
//!
//! Full duplication/TMR "introduce\[s\] significant computation overhead";
//! the economic alternative is protecting only the vulnerable
//! instructions, which requires exactly what the boundary provides: a
//! per-dynamic-instruction vulnerability ranking obtained without an
//! exhaustive campaign. This module turns a boundary into a protection
//! plan and estimates/measures the SDC reduction it buys.

use crate::predict::Predictor;
use crate::sample::SampleSet;
use ftb_inject::ExhaustiveResult;
use serde::{Deserialize, Serialize};

/// A protection plan: the set of dynamic instructions to guard (e.g. by
/// instruction duplication), chosen to maximise removed SDC per guarded
/// site.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProtectionPlan {
    /// Guarded sites, most vulnerable first.
    pub sites: Vec<usize>,
    /// Predicted per-site SDC ratio used for the ranking.
    pub predicted_sdc: Vec<f64>,
    /// Predicted fraction of all SDC events removed by this plan.
    pub predicted_sdc_removed: f64,
}

impl ProtectionPlan {
    /// Plan a protection budget of `budget` sites from a boundary's
    /// predictions (ties broken toward earlier sites for determinism).
    /// `known` experiment outcomes take precedence over prediction.
    pub fn rank(predictor: &Predictor<'_>, known: Option<&SampleSet>, budget: usize) -> Self {
        let predicted = predictor.sdc_ratio_per_site(known);
        let mut order: Vec<usize> = (0..predicted.len()).collect();
        order.sort_by(|&a, &b| {
            predicted[b]
                .partial_cmp(&predicted[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        order.truncate(budget);
        let total: f64 = predicted.iter().sum();
        let removed: f64 = order.iter().map(|&s| predicted[s]).sum();
        ProtectionPlan {
            sites: order,
            predicted_sdc_removed: if total > 0.0 { removed / total } else { 0.0 },
            predicted_sdc: predicted,
        }
    }

    /// Membership mask over all sites.
    pub fn mask(&self, n_sites: usize) -> Vec<bool> {
        let mut m = vec![false; n_sites];
        for &s in &self.sites {
            m[s] = true;
        }
        m
    }

    /// Ground-truth residual SDC ratio if every experiment at a guarded
    /// site is corrected (evaluation only; requires exhaustive truth).
    pub fn residual_sdc(&self, truth: &ExhaustiveResult) -> f64 {
        let mask = self.mask(truth.n_sites);
        let mut sdc = 0u64;
        for (site, _, o) in truth.iter() {
            if o.is_sdc() && !mask[site] {
                sdc += 1;
            }
        }
        sdc as f64 / truth.n_experiments() as f64
    }

    /// Ground-truth fraction of SDC removed, relative to the unprotected
    /// baseline.
    pub fn sdc_reduction(&self, truth: &ExhaustiveResult) -> f64 {
        let base = truth.overall_sdc_ratio();
        if base == 0.0 {
            return 0.0;
        }
        1.0 - self.residual_sdc(truth) / base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Analysis;
    use crate::infer::FilterMode;
    use ftb_inject::Classifier;
    use ftb_kernels::{CgConfig, CgKernel};

    fn cg_fixture() -> CgKernel {
        CgKernel::new(CgConfig {
            grid: 4,
            max_iters: 100,
            ..CgConfig::small()
        })
    }

    #[test]
    fn ranking_orders_by_predicted_vulnerability() {
        let k = cg_fixture();
        let a = Analysis::new(&k, Classifier::new(1e-1));
        let samples = a.sample_uniform(0.2, 3);
        let inf = a.infer(&samples, FilterMode::PerSite);
        let predictor = a.predictor(&inf.boundary);
        let plan = ProtectionPlan::rank(&predictor, Some(&samples), 10);
        assert_eq!(plan.sites.len(), 10);
        for w in plan.sites.windows(2) {
            assert!(
                plan.predicted_sdc[w[0]] >= plan.predicted_sdc[w[1]],
                "ranking not sorted"
            );
        }
        assert!((0.0..=1.0).contains(&plan.predicted_sdc_removed));
    }

    #[test]
    fn guided_plan_beats_tail_sites_on_ground_truth() {
        let k = cg_fixture();
        let a = Analysis::new(&k, Classifier::new(1e-1));
        let truth = a.exhaustive();
        let samples = a.sample_uniform(0.2, 3);
        let inf = a.infer(&samples, FilterMode::PerSite);
        let predictor = a.predictor(&inf.boundary);

        let budget = a.n_sites() / 5;
        let guided = ProtectionPlan::rank(&predictor, Some(&samples), budget);

        // an anti-plan guarding the *least* vulnerable sites
        let mut anti_order: Vec<usize> = (0..a.n_sites()).collect();
        anti_order.sort_by(|&x, &y| {
            guided.predicted_sdc[x]
                .partial_cmp(&guided.predicted_sdc[y])
                .unwrap()
        });
        let anti = ProtectionPlan {
            sites: anti_order.into_iter().take(budget).collect(),
            predicted_sdc: guided.predicted_sdc.clone(),
            predicted_sdc_removed: 0.0,
        };

        assert!(
            guided.sdc_reduction(&truth) > anti.sdc_reduction(&truth),
            "guided {:.3} should beat anti {:.3}",
            guided.sdc_reduction(&truth),
            anti.sdc_reduction(&truth)
        );
    }

    #[test]
    fn full_budget_removes_everything() {
        let k = cg_fixture();
        let a = Analysis::new(&k, Classifier::new(1e-1));
        let truth = a.exhaustive();
        let samples = a.sample_uniform(0.2, 3);
        let inf = a.infer(&samples, FilterMode::PerSite);
        let plan = ProtectionPlan::rank(&a.predictor(&inf.boundary), Some(&samples), a.n_sites());
        assert_eq!(plan.residual_sdc(&truth), 0.0);
        assert_eq!(plan.sdc_reduction(&truth), 1.0);
    }

    #[test]
    fn zero_budget_changes_nothing() {
        let k = cg_fixture();
        let a = Analysis::new(&k, Classifier::new(1e-1));
        let truth = a.exhaustive();
        let samples = a.sample_uniform(0.2, 3);
        let inf = a.infer(&samples, FilterMode::PerSite);
        let plan = ProtectionPlan::rank(&a.predictor(&inf.boundary), Some(&samples), 0);
        assert!(plan.sites.is_empty());
        assert!((plan.residual_sdc(&truth) - truth.overall_sdc_ratio()).abs() < 1e-12);
    }
}
