//! High-level analysis facade: the one-stop API a downstream user drives.
//!
//! Wraps a kernel + classifier pair and exposes the full workflow —
//! golden recording, uniform or adaptive sampling, boundary inference,
//! prediction, self-verification, and ground-truth evaluation — behind a
//! handful of methods. The bench harness and CLI are thin wrappers over
//! this type.

use crate::adaptive::{adaptive_boundary, AdaptiveConfig, AdaptiveResult};
use crate::boundary::{golden_boundary, Boundary};
use crate::infer::{infer_boundary, FilterMode, Inference};
use crate::metrics::{BoundaryEval, SdcProfile};
use crate::predict::Predictor;
use crate::protection::ProtectionPlan;
use crate::sample::SampleSet;
use ftb_inject::{
    monte_carlo, Classifier, ExhaustiveResult, ExtractionMode, Injector, MonteCarloEstimate,
};
use ftb_kernels::Kernel;
use ftb_trace::GoldenRun;

/// A bound analysis session over one kernel.
pub struct Analysis<'k> {
    injector: Injector<'k>,
}

impl<'k> Analysis<'k> {
    /// Record the golden run and prepare the session.
    pub fn new(kernel: &'k dyn Kernel, classifier: Classifier) -> Self {
        Analysis {
            injector: Injector::new(kernel, classifier),
        }
    }

    /// Select the propagation-extraction path for every campaign and
    /// inference this session runs (default
    /// [`ExtractionMode::Streamed`]). Results are identical across
    /// modes; this is a pure performance/memory choice.
    pub fn with_extraction(mut self, mode: ExtractionMode) -> Self {
        self.injector = self.injector.with_extraction(mode);
        self
    }

    /// Capture golden-run boundary snapshots and serve every experiment
    /// from the snapshot preceding its fault site (see
    /// [`Injector::with_snapshots`]). A no-op for kernels that are not
    /// snapshot-capable; results are bit-identical either way.
    pub fn with_snapshots(mut self, max_snapshots: usize) -> Self {
        self.injector = self.injector.with_snapshots(max_snapshots);
        self
    }

    /// Allow contraction-certificate early exits on snapshot-resumed
    /// runs (see [`Injector::with_certified_exits`]): outcome codes stay
    /// identical to from-scratch execution, but `output_err` of a
    /// certificate-exited experiment is a certified upper bound rather
    /// than the exact deviation.
    pub fn with_certified_exits(mut self) -> Self {
        self.injector = self.injector.with_certified_exits();
        self
    }

    /// The underlying injector.
    pub fn injector(&self) -> &Injector<'k> {
        &self.injector
    }

    /// The golden reference run.
    pub fn golden(&self) -> &GoldenRun {
        self.injector.golden()
    }

    /// Number of fault-injection sites.
    pub fn n_sites(&self) -> usize {
        self.injector.n_sites()
    }

    /// Run the exhaustive ground-truth campaign (`sites × bits` runs).
    pub fn exhaustive(&self) -> ExhaustiveResult {
        self.injector.exhaustive()
    }

    /// Build the *golden boundary* from exhaustive data (paper §4.1).
    pub fn golden_boundary(&self, exhaustive: &ExhaustiveResult) -> Boundary {
        golden_boundary(self.golden(), exhaustive)
    }

    /// The paper's uniform sampling: select `rate × n_sites` dynamic
    /// instructions uniformly and inject **every bit** of each (§4.4).
    pub fn sample_uniform(&self, rate: f64, seed: u64) -> SampleSet {
        let k = ((rate * self.n_sites() as f64).round() as usize).max(1);
        SampleSet::sample_sites(&self.injector, k, seed)
    }

    /// Infer the fault tolerance boundary from a sample set
    /// (Algorithm 1 + filter operation).
    pub fn infer(&self, samples: &SampleSet, filter: FilterMode) -> Inference {
        infer_boundary(&self.injector, samples, filter)
    }

    /// Run the §3.4 adaptive sampling loop.
    pub fn adaptive(&self, cfg: &AdaptiveConfig) -> AdaptiveResult {
        adaptive_boundary(&self.injector, cfg)
    }

    /// A predictor over the whole experiment space for a boundary.
    pub fn predictor<'b>(&'b self, boundary: &'b Boundary) -> Predictor<'b> {
        Predictor::new(self.golden(), boundary)
    }

    /// Precision/recall of a boundary against exhaustive ground truth.
    pub fn evaluate(&self, boundary: &Boundary, truth: &ExhaustiveResult) -> BoundaryEval {
        BoundaryEval::against_exhaustive(&self.predictor(boundary), truth)
    }

    /// The §3.6 self-verifying uncertainty of a boundary over the samples
    /// it was built from (no ground truth needed).
    pub fn uncertainty(&self, boundary: &Boundary, samples: &SampleSet) -> f64 {
        BoundaryEval::uncertainty(&self.predictor(boundary), samples).precision
    }

    /// Per-site golden vs predicted SDC profile.
    pub fn profile(
        &self,
        boundary: &Boundary,
        truth: &ExhaustiveResult,
        known: Option<&SampleSet>,
    ) -> SdcProfile {
        SdcProfile::new(truth, &self.predictor(boundary), known)
    }

    /// The statistical-fault-injection baseline (uniform Monte Carlo).
    pub fn monte_carlo(&self, n: u64, level: f64, seed: u64) -> MonteCarloEstimate {
        monte_carlo(&self.injector, n, level, seed)
    }

    /// Plan selective protection for `budget` sites from a boundary's
    /// predictions (see [`ProtectionPlan`]).
    pub fn protection_plan(
        &self,
        boundary: &Boundary,
        known: Option<&SampleSet>,
        budget: usize,
    ) -> ProtectionPlan {
        ProtectionPlan::rank(&self.predictor(boundary), known, budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftb_kernels::{MatvecConfig, MatvecKernel};

    fn session(k: &MatvecKernel) -> Analysis<'_> {
        Analysis::new(k, Classifier::new(1e-6))
    }

    #[test]
    fn end_to_end_uniform_pipeline() {
        let k = MatvecKernel::new(MatvecConfig {
            n: 5,
            ..MatvecConfig::small()
        });
        let a = session(&k);
        let truth = a.exhaustive();
        let samples = a.sample_uniform(0.5, 3);
        let inf = a.infer(&samples, FilterMode::PerSite);
        let eval = a.evaluate(&inf.boundary, &truth);
        let unc = a.uncertainty(&inf.boundary, &samples);
        assert!(eval.precision > 0.8, "precision {}", eval.precision);
        assert!(eval.recall > 0.0);
        assert!(unc > 0.8, "uncertainty {unc}");
        // self-verification: uncertainty approximates precision
        assert!(
            (unc - eval.precision).abs() < 0.2,
            "uncertainty {unc} far from precision {}",
            eval.precision
        );
    }

    #[test]
    fn golden_boundary_beats_inferred_recall() {
        let k = MatvecKernel::new(MatvecConfig {
            n: 5,
            ..MatvecConfig::small()
        });
        let a = session(&k);
        let truth = a.exhaustive();
        let gb = a.golden_boundary(&truth);
        let samples = a.sample_uniform(0.2, 3);
        let inf = a.infer(&samples, FilterMode::PerSite);
        let golden_eval = a.evaluate(&gb, &truth);
        let inferred_eval = a.evaluate(&inf.boundary, &truth);
        assert!(golden_eval.recall >= inferred_eval.recall);
    }

    #[test]
    fn profile_dimensions_match() {
        let k = MatvecKernel::new(MatvecConfig {
            n: 5,
            ..MatvecConfig::small()
        });
        let a = session(&k);
        let truth = a.exhaustive();
        let samples = a.sample_uniform(0.3, 9);
        let inf = a.infer(&samples, FilterMode::PerSite);
        let profile = a.profile(&inf.boundary, &truth, Some(&samples));
        assert_eq!(profile.golden.len(), a.n_sites());
        assert_eq!(profile.predicted.len(), a.n_sites());
        let (g, p) = profile.overall();
        assert!((0.0..=1.0).contains(&g));
        assert!((0.0..=1.0).contains(&p));
        // assumed-SDC convention: prediction never underestimates overall
        // SDC by much at moderate rates
        assert!(p >= g - 0.05, "golden {g} predicted {p}");
    }

    #[test]
    fn adaptive_via_facade() {
        let k = MatvecKernel::new(MatvecConfig {
            n: 5,
            ..MatvecConfig::small()
        });
        let a = session(&k);
        let res = a.adaptive(&AdaptiveConfig {
            round_fraction: 0.02,
            ..Default::default()
        });
        assert!(!res.samples.is_empty());
        let truth = a.exhaustive();
        let eval = a.evaluate(&res.inference.boundary, &truth);
        assert!(
            eval.precision > 0.8,
            "adaptive precision {}",
            eval.precision
        );
    }

    #[test]
    fn monte_carlo_via_facade() {
        let k = MatvecKernel::new(MatvecConfig {
            n: 5,
            ..MatvecConfig::small()
        });
        let a = session(&k);
        let est = a.monte_carlo(200, 0.95, 4);
        assert_eq!(est.n, 200);
    }
}
