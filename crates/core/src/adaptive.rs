//! The §3.4 adaptive sampling method: progressive rounds, biased toward
//! under-informed sites, with boundary-based pruning of the remaining
//! sample space.
//!
//! Each round:
//!
//! 1. draws `round_fraction × n_sites` experiments — sites with
//!    probability `p_i ∝ 1 / S_i` (where `S_i` is the §3.4 information
//!    count: injections at `i` plus propagation observations reaching
//!    `i`), one untested bit per chosen site;
//! 2. runs them and rebuilds the boundary (Algorithm 1 + filter);
//! 3. **shrinks the sample space**: candidate experiments the current
//!    boundary already predicts (masked — or crash, in crash-aware mode)
//!    are removed and never run;
//! 4. stops when a round finds no new masked case or ≥
//!    `stop_sdc_fraction` of its results are SDC (the paper uses 95%),
//!    or when the space is exhausted.
//!
//! The paper's Table 3 shows this terminating at ~1% (CG) to ~10% (FFT)
//! of sites while predicting the golden SDC ratio closely.

use crate::infer::{infer_boundary, FilterMode, Inference};
use crate::predict::{PredictedOutcome, Predictor};
use crate::sample::SampleSet;
use ftb_inject::Injector;
use ftb_stats::sampling::{sample_weighted_without_replacement, seeded_rng};
use ftb_trace::FaultSpec;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the adaptive sampler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveConfig {
    /// Experiments per round as a fraction of the site count (the paper
    /// uses 0.1%).
    pub round_fraction: f64,
    /// Lower bound on the experiments per round. The paper's programs
    /// have ≥47k sites, so its 0.1% rounds hold ≥47 experiments; at
    /// laptop scale a bare 0.1% round is 3–8 experiments and the stop
    /// criterion would fire on sampling noise.
    pub min_round_size: usize,
    /// Stop once this fraction of a round's outcomes are SDC (paper: 95%).
    pub stop_sdc_fraction: f64,
    /// Require this many *consecutive* rounds meeting the stop criterion
    /// before actually stopping (noise guard for small rounds).
    pub dry_rounds: usize,
    /// Never stop before this many rounds (guards against a tiny unlucky
    /// first round aborting the whole analysis).
    pub min_rounds: usize,
    /// Hard round cap.
    pub max_rounds: usize,
    /// Filter operation mode for boundary rebuilds.
    pub filter: FilterMode,
    /// Bias sites by `1/S_i` (`false` = uniform progressive sampling, the
    /// ablation baseline).
    pub bias: bool,
    /// Also prune candidates whose flip is non-finite (predicted crash).
    pub crash_aware: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            round_fraction: 0.001,
            min_round_size: 32,
            stop_sdc_fraction: 0.95,
            dry_rounds: 2,
            min_rounds: 2,
            max_rounds: 10_000,
            filter: FilterMode::PerSite,
            bias: true,
            crash_aware: true,
            seed: 42,
        }
    }
}

/// Per-round progress record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundStats {
    /// Round index (0-based).
    pub round: usize,
    /// Experiments run this round.
    pub n_run: usize,
    /// Masked outcomes this round.
    pub n_masked: usize,
    /// SDC outcomes this round.
    pub n_sdc: usize,
    /// Crash outcomes this round.
    pub n_crash: usize,
    /// Candidate experiments remaining after pruning.
    pub candidates_left: u64,
}

/// Result of an adaptive sampling run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdaptiveResult {
    /// All experiments run, across rounds.
    pub samples: SampleSet,
    /// Final boundary inference.
    pub inference: Inference,
    /// Per-round progress.
    pub rounds: Vec<RoundStats>,
}

impl AdaptiveResult {
    /// The paper's sample-size metric: experiments / sites.
    pub fn sample_rate(&self, n_sites: usize) -> f64 {
        self.samples.rate(n_sites)
    }
}

/// Remaining-candidate bookkeeping: one bitmask of untested, unpruned
/// bits per site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct CandidateSpace {
    masks: Vec<u64>,
}

impl CandidateSpace {
    fn full(n_sites: usize, bits: u8) -> Self {
        let full_mask = if bits == 64 {
            u64::MAX
        } else {
            (1u64 << bits) - 1
        };
        CandidateSpace {
            masks: vec![full_mask; n_sites],
        }
    }

    fn remaining(&self) -> u64 {
        self.masks.iter().map(|m| u64::from(m.count_ones())).sum()
    }

    fn site_has_candidates(&self, site: usize) -> bool {
        self.masks[site] != 0
    }

    /// Pick the `k`-th set bit (random rank) of the site's mask.
    fn random_bit(&self, site: usize, rng: &mut impl Rng) -> u8 {
        let m = self.masks[site];
        debug_assert!(m != 0);
        let n = m.count_ones();
        let rank = rng.gen_range(0..n);
        nth_set_bit(m, rank)
    }

    fn remove(&mut self, site: usize, bit: u8) {
        self.masks[site] &= !(1u64 << bit);
    }

    /// Prune every candidate the predictor already decides (masked, or
    /// crash in crash-aware mode). Returns the number pruned.
    fn prune(&mut self, predictor: &Predictor<'_>, crash_aware: bool) -> u64 {
        let mut pruned = 0;
        for site in 0..self.masks.len() {
            let mut m = self.masks[site];
            while m != 0 {
                let bit = m.trailing_zeros() as u8;
                m &= m - 1;
                let p = predictor.predict(site, bit);
                let decided =
                    p == PredictedOutcome::Masked || (crash_aware && p == PredictedOutcome::Crash);
                if decided {
                    self.remove(site, bit);
                    pruned += 1;
                }
            }
        }
        pruned
    }
}

/// Index of the `rank`-th (0-based) set bit of `m`.
fn nth_set_bit(mut m: u64, mut rank: u32) -> u8 {
    debug_assert!(m.count_ones() > rank);
    loop {
        let b = m.trailing_zeros();
        if rank == 0 {
            return b as u8;
        }
        m &= m - 1;
        rank -= 1;
    }
}

/// Mix a round index into the campaign seed (SplitMix64 finalizer).
///
/// Each round draws from its own RNG derived from `(seed, round)` so a
/// checkpointed run resumed from a serialized [`AdaptiveState`] replays
/// the exact experiment sequence an uninterrupted run would produce —
/// no RNG stream needs to survive serialization.
fn round_seed(seed: u64, round: usize) -> u64 {
    let mut z = seed ^ (round as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The complete resumable state of an adaptive sampling run.
///
/// Everything the §3.4 loop carries between rounds lives here — the
/// candidate space, the incremental boundary, the per-site information
/// counts and SDC minima, the collected samples, and the stop-criterion
/// bookkeeping — and all of it serializes, so a campaign can be
/// checkpointed after any round and resumed bit-for-bit later (the CLI's
/// `--checkpoint`/`--resume` flags).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdaptiveState {
    /// Configuration the run was started with.
    pub cfg: AdaptiveConfig,
    /// Number of injection sites (resume must agree with the injector).
    pub n_sites: usize,
    /// Bits per site (resume must agree with the injector).
    pub bits: u8,
    /// Rounds completed so far.
    pub round: usize,
    consecutive_dry: usize,
    space: CandidateSpace,
    information: Vec<u32>,
    #[serde(with = "ftb_trace::serde_float::vec")]
    min_sdc: Vec<f64>,
    boundary: crate::boundary::Boundary,
    /// A prior boundary (typically from `staticbound`) the run was seeded
    /// with; re-merged into the canonical rebuild at [`finish`] time.
    /// `None` for cold-start runs and for checkpoints written before the
    /// field existed (`ftb-adaptive-v1` stays readable).
    ///
    /// [`finish`]: AdaptiveState::finish
    #[serde(default)]
    prior: Option<crate::boundary::Boundary>,
    /// All experiments run so far.
    pub samples: SampleSet,
    /// Per-round progress.
    pub rounds: Vec<RoundStats>,
    done: bool,
}

impl AdaptiveState {
    /// Fresh state for an adaptive run against `injector`.
    ///
    /// # Panics
    /// Panics on non-positive `round_fraction` or a zero `max_rounds`.
    pub fn new(injector: &Injector<'_>, cfg: &AdaptiveConfig) -> Self {
        assert!(cfg.round_fraction > 0.0, "round_fraction must be positive");
        assert!(cfg.max_rounds > 0, "need at least one round");
        let n_sites = injector.n_sites();
        AdaptiveState {
            cfg: cfg.clone(),
            n_sites,
            bits: injector.bits(),
            round: 0,
            consecutive_dry: 0,
            space: CandidateSpace::full(n_sites, injector.bits()),
            information: vec![1u32; n_sites], // the §3.4 S_i counts
            min_sdc: vec![f64::INFINITY; n_sites],
            boundary: crate::boundary::Boundary::zero(n_sites),
            prior: None,
            samples: SampleSet::new(),
            rounds: Vec::new(),
            done: false,
        }
    }

    /// Fresh state seeded with a `prior` boundary — typically the static
    /// analyzer's zero-injection certificate ([`crate::static_bound`]).
    ///
    /// Seeding does three things the cold start cannot:
    /// the prior's thresholds merge into the working boundary (so early
    /// rounds predict-and-prune with analytical knowledge instead of
    /// zeros), its support counts feed the §3.4 `S_i` information counts
    /// (biased sampling starts pointed at sites the prior says least
    /// about), and the candidate space is pruned *before round 0* (every
    /// experiment the prior already certifies is never run). Seeding with
    /// [`Boundary::zero`] is exactly [`AdaptiveState::new`].
    ///
    /// [`Boundary::zero`]: crate::boundary::Boundary::zero
    ///
    /// # Panics
    /// Panics if `prior` covers a different number of sites than the
    /// injector, plus the [`AdaptiveState::new`] config panics.
    pub fn with_prior(
        injector: &Injector<'_>,
        cfg: &AdaptiveConfig,
        prior: crate::boundary::Boundary,
    ) -> Self {
        let mut state = AdaptiveState::new(injector, cfg);
        assert_eq!(
            prior.n_sites(),
            state.n_sites,
            "prior covers a different fault space"
        );
        state.boundary.merge_prior(&prior);
        for site in 0..state.n_sites {
            state.information[site] = state.information[site].saturating_add(prior.support(site));
        }
        let predictor = Predictor::new(injector.golden(), &state.boundary);
        state.space.prune(&predictor, cfg.crash_aware);
        state.prior = Some(prior);
        state
    }

    /// Remove statically certified bits from the candidate space — the
    /// `--bit-prune` hook. Every `CertifiedMasked` bit of `masks`
    /// (`ftb-core::absint`) is dropped from the space before it can be
    /// drawn, and each pruned bit counts into the site's §3.4 `S_i`
    /// information tally: certified bits are knowledge the sampler no
    /// longer has to buy, so the `1/S_i` weights re-point the round
    /// budget toward sites that remain `Unknown`-heavy. Returns the
    /// number of candidates pruned.
    ///
    /// Call before the first [`step`](AdaptiveState::step) (composes
    /// with [`with_prior`](AdaptiveState::with_prior), which prunes via
    /// exact per-golden-value prediction; the masks additionally hold
    /// over the site's whole exponent range). The pruning is part of the
    /// serialized state, so checkpoint/resume stays bit-identical.
    ///
    /// # Panics
    /// Panics if the masks cover a different fault space.
    pub fn apply_bit_masks(&mut self, masks: &crate::absint::BitMasks) -> u64 {
        assert_eq!(
            masks.n_sites(),
            self.n_sites,
            "masks cover a different fault space"
        );
        assert_eq!(masks.bits, self.bits, "masks have the wrong bit width");
        let mut pruned = 0u64;
        for (site, m) in masks.sites.iter().enumerate() {
            let hit = m.certified & self.space.masks[site];
            let k = hit.count_ones();
            if k > 0 {
                self.space.masks[site] &= !hit;
                self.information[site] = self.information[site].saturating_add(k);
                pruned += u64::from(k);
            }
        }
        pruned
    }

    /// Whether this (possibly deserialized) state belongs to the same
    /// fault space as `injector`.
    pub fn matches(&self, injector: &Injector<'_>) -> bool {
        self.n_sites == injector.n_sites() && self.bits == injector.bits()
    }

    /// Whether the stop criteria have fired.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Run one sampling round. Returns the round's stats, or `None` if
    /// the run is (now) complete.
    pub fn step(&mut self, injector: &Injector<'_>) -> Option<RoundStats> {
        if self.done || self.round >= self.cfg.max_rounds {
            self.done = true;
            return None;
        }
        let cfg = &self.cfg;
        let round_size = ((cfg.round_fraction * self.n_sites as f64).ceil() as usize)
            .max(cfg.min_round_size)
            .max(1);
        let mut rng = seeded_rng(round_seed(cfg.seed, self.round));

        // 1. choose sites: weight 1/S_i among sites with candidates left
        let weights: Vec<f64> = (0..self.n_sites)
            .map(|site| {
                if !self.space.site_has_candidates(site) {
                    0.0
                } else if cfg.bias {
                    1.0 / f64::from(self.information[site])
                } else {
                    1.0
                }
            })
            .collect();
        let chosen = sample_weighted_without_replacement(&weights, round_size, &mut rng);
        if chosen.is_empty() {
            self.done = true; // space exhausted
            return None;
        }
        let faults: Vec<FaultSpec> = chosen
            .iter()
            .map(|&site| {
                let bit = self.space.random_bit(site, &mut rng);
                FaultSpec { site, bit }
            })
            .collect();

        // 2. run, record and update the incremental state
        let results = injector.run_many(&faults);
        let (mut n_masked, mut n_sdc, mut n_crash) = (0, 0, 0);
        for e in results {
            self.information[e.site] = self.information[e.site].saturating_add(1);
            match e.outcome {
                o if o.is_masked() => {
                    n_masked += 1;
                    // fold this run's propagation (Algorithm 1), filtered
                    // against the SDC minima known so far
                    let (_, prop) = injector.run_one_traced(e.site, e.bit);
                    for (site, err) in prop.iter() {
                        if err == 0.0 {
                            continue;
                        }
                        let passes = match cfg.filter {
                            FilterMode::Off => true,
                            _ => err < self.min_sdc[site],
                        };
                        if passes {
                            self.boundary.observe(site, err);
                        }
                        self.information[site] = self.information[site].saturating_add(1);
                    }
                }
                o if o.is_sdc() => {
                    n_sdc += 1;
                    if cfg.filter != FilterMode::Off && e.injected_err < self.min_sdc[e.site] {
                        self.min_sdc[e.site] = e.injected_err;
                        // retroactive filter: never certify ≥ a known SDC error
                        self.boundary.clamp_below(e.site, e.injected_err);
                    }
                }
                _ => n_crash += 1,
            }
            self.space.remove(e.site, e.bit);
            self.samples.insert(e);
        }

        // 3. shrink the candidate space with the current boundary
        let predictor = Predictor::new(injector.golden(), &self.boundary);
        self.space.prune(&predictor, cfg.crash_aware);

        let n_run = n_masked + n_sdc + n_crash;
        let stats = RoundStats {
            round: self.round,
            n_run,
            n_masked,
            n_sdc,
            n_crash,
            candidates_left: self.space.remaining(),
        };
        self.rounds.push(stats);
        self.round += 1;

        // 4. stop criteria (paper §3.4): no new masked cases, or the
        // round was ≥95% SDC — sustained for `dry_rounds` rounds
        let sdc_frac = n_sdc as f64 / n_run.max(1) as f64;
        if n_masked == 0 || sdc_frac >= self.cfg.stop_sdc_fraction {
            self.consecutive_dry += 1;
        } else {
            self.consecutive_dry = 0;
        }
        if self.consecutive_dry >= self.cfg.dry_rounds && self.round >= self.cfg.min_rounds {
            self.done = true;
        }
        if self.space.remaining() == 0 {
            self.done = true;
        }
        Some(stats)
    }

    /// Final exact boundary rebuild (the incremental fold is
    /// order-dependent in what the filter discards; the returned
    /// boundary is canonical).
    pub fn finish(&self, injector: &Injector<'_>) -> AdaptiveResult {
        let mut inference = infer_boundary(injector, &self.samples, self.cfg.filter);
        if let Some(prior) = &self.prior {
            // fold the analytical certificate back in: the rebuild only
            // sees the experiments, not the knowledge that let us skip
            // experiments in the first place
            inference.boundary.merge_prior(prior);
            if self.cfg.filter != FilterMode::Off {
                // the §3.5 filter still wins over the prior wherever an
                // actual SDC observation contradicts it
                let mins = self.samples.min_sdc_injected(self.n_sites);
                for (site, &cap) in mins.iter().enumerate() {
                    inference.boundary.clamp_below(site, cap);
                }
            }
        }
        AdaptiveResult {
            samples: self.samples.clone(),
            inference,
            rounds: self.rounds.clone(),
        }
    }
}

/// Run the adaptive sampling loop to completion. See the module docs.
///
/// Equivalent to driving [`AdaptiveState`] round-by-round — which is
/// what the checkpointing CLI does — followed by
/// [`AdaptiveState::finish`].
pub fn adaptive_boundary(injector: &Injector<'_>, cfg: &AdaptiveConfig) -> AdaptiveResult {
    let mut state = AdaptiveState::new(injector, cfg);
    while state.step(injector).is_some() {}
    state.finish(injector)
}

/// [`adaptive_boundary`] seeded with a prior boundary — see
/// [`AdaptiveState::with_prior`].
pub fn adaptive_boundary_with_prior(
    injector: &Injector<'_>,
    cfg: &AdaptiveConfig,
    prior: crate::boundary::Boundary,
) -> AdaptiveResult {
    let mut state = AdaptiveState::with_prior(injector, cfg, prior);
    while state.step(injector).is_some() {}
    state.finish(injector)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftb_inject::Classifier;
    use ftb_kernels::{MatvecConfig, MatvecKernel, StencilConfig, StencilKernel};

    #[test]
    fn nth_set_bit_works() {
        assert_eq!(nth_set_bit(0b1011, 0), 0);
        assert_eq!(nth_set_bit(0b1011, 1), 1);
        assert_eq!(nth_set_bit(0b1011, 2), 3);
        assert_eq!(nth_set_bit(1 << 63, 0), 63);
    }

    #[test]
    fn candidate_space_accounting() {
        let mut s = CandidateSpace::full(2, 32);
        assert_eq!(s.remaining(), 64);
        s.remove(0, 5);
        assert_eq!(s.remaining(), 63);
        assert!(s.site_has_candidates(0));
        for b in 0..32 {
            s.remove(1, b);
        }
        assert!(!s.site_has_candidates(1));
    }

    #[test]
    fn apply_bit_masks_prunes_the_space_and_reweights() {
        use crate::absint::{BitMasks, MaskSource, SiteMask};
        let k = MatvecKernel::new(MatvecConfig {
            n: 3,
            ..MatvecConfig::small()
        });
        let inj = Injector::new(&k, Classifier::new(1e-6));
        let mut state = AdaptiveState::new(&inj, &AdaptiveConfig::default());
        let before = state.space.remaining();
        let info_before = state.information[0];

        // certify the low 8 mantissa bits of site 0 only
        let mut sites = vec![SiteMask::default(); inj.n_sites()];
        sites[0] = SiteMask {
            certified: 0xff,
            crash_likely: 0,
        };
        let masks = BitMasks {
            bits: inj.bits(),
            source: MaskSource::Static,
            sites,
        };
        let pruned = state.apply_bit_masks(&masks);
        assert_eq!(pruned, 8);
        assert_eq!(state.space.remaining(), before - 8);
        // pruning is idempotent: the bits are already gone
        assert_eq!(state.apply_bit_masks(&masks), 0);
        // certified bits count as information, shifting weight away
        assert_eq!(state.information[0], info_before + 8);
        // and the sampler can never draw a certified bit again
        let mut rng = ftb_stats::sampling::seeded_rng(11);
        for _ in 0..200 {
            let bit = state.space.random_bit(0, &mut rng);
            assert!(bit >= 8, "drew certified bit {bit}");
        }
    }

    #[test]
    #[should_panic(expected = "different fault space")]
    fn apply_bit_masks_rejects_wrong_geometry() {
        use crate::absint::{BitMasks, MaskSource};
        let k = MatvecKernel::new(MatvecConfig {
            n: 3,
            ..MatvecConfig::small()
        });
        let inj = Injector::new(&k, Classifier::new(1e-6));
        let mut state = AdaptiveState::new(&inj, &AdaptiveConfig::default());
        let masks = BitMasks {
            bits: inj.bits(),
            source: MaskSource::Static,
            sites: Vec::new(),
        };
        state.apply_bit_masks(&masks);
    }

    #[test]
    fn adaptive_terminates_and_uses_fewer_samples_than_exhaustive() {
        let k = StencilKernel::new(StencilConfig {
            grid: 8,
            sweeps: 4,
            ..StencilConfig::small()
        });
        let inj = Injector::new(&k, Classifier::new(1e-6));
        let cfg = AdaptiveConfig {
            round_fraction: 0.01,
            ..AdaptiveConfig::default()
        };
        let res = adaptive_boundary(&inj, &cfg);
        assert!(!res.rounds.is_empty());
        let total_space = inj.n_sites() as u64 * 64;
        assert!(
            (res.samples.len() as u64) < total_space / 4,
            "adaptive used {} of {} experiments",
            res.samples.len(),
            total_space
        );
        assert!(res.inference.boundary.coverage() > 0.0);
    }

    #[test]
    fn adaptive_is_deterministic_per_seed() {
        let k = MatvecKernel::new(MatvecConfig {
            n: 6,
            ..MatvecConfig::small()
        });
        let inj = Injector::new(&k, Classifier::new(1e-6));
        let cfg = AdaptiveConfig {
            round_fraction: 0.02,
            ..AdaptiveConfig::default()
        };
        let a = adaptive_boundary(&inj, &cfg);
        let b = adaptive_boundary(&inj, &cfg);
        assert_eq!(a.samples.experiments(), b.samples.experiments());
        assert_eq!(a.rounds, b.rounds);
    }

    #[test]
    fn rounds_respect_min_rounds() {
        let k = MatvecKernel::new(MatvecConfig {
            n: 6,
            ..MatvecConfig::small()
        });
        let inj = Injector::new(&k, Classifier::new(1e-6));
        let cfg = AdaptiveConfig {
            round_fraction: 0.01,
            min_rounds: 4,
            ..AdaptiveConfig::default()
        };
        let res = adaptive_boundary(&inj, &cfg);
        assert!(res.rounds.len() >= 4 || res.rounds.last().unwrap().candidates_left == 0);
    }

    #[test]
    fn unbiased_mode_also_terminates() {
        let k = MatvecKernel::new(MatvecConfig {
            n: 6,
            ..MatvecConfig::small()
        });
        let inj = Injector::new(&k, Classifier::new(1e-6));
        let cfg = AdaptiveConfig {
            bias: false,
            round_fraction: 0.02,
            ..AdaptiveConfig::default()
        };
        let res = adaptive_boundary(&inj, &cfg);
        assert!(!res.rounds.is_empty());
    }

    #[test]
    fn checkpointed_run_replays_identically() {
        let k = MatvecKernel::new(MatvecConfig {
            n: 6,
            ..MatvecConfig::small()
        });
        let inj = Injector::new(&k, Classifier::new(1e-6));
        let cfg = AdaptiveConfig {
            round_fraction: 0.02,
            ..AdaptiveConfig::default()
        };

        let uninterrupted = adaptive_boundary(&inj, &cfg);

        // serialize the state after *every* round, as the CLI's
        // --checkpoint does, and continue from the deserialized copy
        let mut state = AdaptiveState::new(&inj, &cfg);
        while state.step(&inj).is_some() {
            let json = serde_json::to_string(&state).unwrap();
            state = serde_json::from_str(&json).unwrap();
            assert!(state.matches(&inj));
        }
        let resumed = state.finish(&inj);

        assert_eq!(
            uninterrupted.samples.experiments(),
            resumed.samples.experiments()
        );
        assert_eq!(uninterrupted.rounds, resumed.rounds);
        assert_eq!(
            serde_json::to_string(&uninterrupted.inference.boundary).unwrap(),
            serde_json::to_string(&resumed.inference.boundary).unwrap(),
            "inferred boundaries must be byte-identical"
        );
    }

    #[test]
    fn state_rejects_foreign_fault_space() {
        let k = MatvecKernel::new(MatvecConfig {
            n: 6,
            ..MatvecConfig::small()
        });
        let inj = Injector::new(&k, Classifier::new(1e-6));
        let state = AdaptiveState::new(&inj, &AdaptiveConfig::default());
        let k2 = MatvecKernel::new(MatvecConfig {
            n: 4,
            ..MatvecConfig::small()
        });
        let inj2 = Injector::new(&k2, Classifier::new(1e-6));
        assert!(state.matches(&inj));
        assert!(!state.matches(&inj2));
    }

    #[test]
    fn zero_prior_is_identity() {
        let k = MatvecKernel::new(MatvecConfig {
            n: 6,
            ..MatvecConfig::small()
        });
        let inj = Injector::new(&k, Classifier::new(1e-6));
        let cfg = AdaptiveConfig {
            round_fraction: 0.02,
            ..AdaptiveConfig::default()
        };
        let cold = adaptive_boundary(&inj, &cfg);
        let seeded = adaptive_boundary_with_prior(
            &inj,
            &cfg,
            crate::boundary::Boundary::zero(inj.n_sites()),
        );
        assert_eq!(cold.samples.experiments(), seeded.samples.experiments());
        assert_eq!(cold.rounds, seeded.rounds);
        assert_eq!(
            cold.inference.boundary.thresholds(),
            seeded.inference.boundary.thresholds()
        );
    }

    #[test]
    fn prior_prunes_candidates_before_round_zero() {
        let k = MatvecKernel::new(MatvecConfig {
            n: 6,
            ..MatvecConfig::small()
        });
        let inj = Injector::new(&k, Classifier::new(1e-6));
        let cfg = AdaptiveConfig::default();
        let cold = AdaptiveState::new(&inj, &cfg);
        // a crude prior: every site tolerates at least its lowest-mantissa
        // bit flip, so that flip is predictable and must be pruned
        let prior = crate::boundary::Boundary::from_thresholds(
            (0..inj.n_sites())
                .map(|s| inj.golden().flip_errors(s)[0])
                .collect(),
        );
        let seeded = AdaptiveState::with_prior(&inj, &cfg, prior);
        assert!(
            seeded.space.remaining() < cold.space.remaining(),
            "prior pruned nothing: {} vs {}",
            seeded.space.remaining(),
            cold.space.remaining()
        );
        // information counts got the prior's support
        assert!(seeded.information.iter().all(|&s| s >= 2));
    }

    #[test]
    fn seeded_checkpoint_preserves_prior_across_serialization() {
        let k = MatvecKernel::new(MatvecConfig {
            n: 6,
            ..MatvecConfig::small()
        });
        let inj = Injector::new(&k, Classifier::new(1e-6));
        let cfg = AdaptiveConfig {
            round_fraction: 0.02,
            ..AdaptiveConfig::default()
        };
        let prior = crate::boundary::Boundary::from_thresholds(vec![1e-300; inj.n_sites()]);

        let mut uninterrupted = AdaptiveState::with_prior(&inj, &cfg, prior.clone());
        while uninterrupted.step(&inj).is_some() {}
        let expect = uninterrupted.finish(&inj);

        let mut state = AdaptiveState::with_prior(&inj, &cfg, prior);
        while state.step(&inj).is_some() {
            let json = serde_json::to_string(&state).unwrap();
            state = serde_json::from_str(&json).unwrap();
        }
        let resumed = state.finish(&inj);
        assert_eq!(expect.samples.experiments(), resumed.samples.experiments());
        assert_eq!(
            expect.inference.boundary.thresholds(),
            resumed.inference.boundary.thresholds()
        );
    }

    #[test]
    fn old_checkpoint_without_prior_field_still_loads() {
        let k = MatvecKernel::new(MatvecConfig {
            n: 6,
            ..MatvecConfig::small()
        });
        let inj = Injector::new(&k, Classifier::new(1e-6));
        let state = AdaptiveState::new(&inj, &AdaptiveConfig::default());
        let json = serde_json::to_string(&state).unwrap();
        // simulate a checkpoint written before the `prior` field existed
        let old = json.replace("\"prior\":null,", "");
        assert_ne!(old, json, "fixture no longer exercises the old format");
        let loaded: AdaptiveState = serde_json::from_str(&old).unwrap();
        assert!(loaded.prior.is_none());
        assert!(loaded.matches(&inj));
    }

    #[test]
    fn pruned_candidates_shrink_monotonically() {
        let k = MatvecKernel::new(MatvecConfig {
            n: 6,
            ..MatvecConfig::small()
        });
        let inj = Injector::new(&k, Classifier::new(1e-6));
        let cfg = AdaptiveConfig {
            round_fraction: 0.02,
            min_rounds: 3,
            stop_sdc_fraction: 2.0, // never stop on SDC fraction
            max_rounds: 6,
            ..AdaptiveConfig::default()
        };
        let res = adaptive_boundary(&inj, &cfg);
        for w in res.rounds.windows(2) {
            assert!(w[1].candidates_left <= w[0].candidates_left);
        }
    }
}
