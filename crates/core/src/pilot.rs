//! A Relyzer-style *pilot grouping* baseline.
//!
//! The paper's closest related work (Hari et al., Relyzer; Kaliorakis et
//! al., Merlin — its §6) reduces campaign cost by **grouping** dynamic
//! instructions expected to behave alike, fully testing one *pilot* per
//! group, and assigning the pilot's outcome profile to every member.
//! The paper positions the boundary method against this family: "instead
//! of grouping multiple instructions and picking one dynamic
//! instruction's resiliency to represent all, our approach uses the
//! propagation data to predict the resiliency of all fault injection
//! sites".
//!
//! This module implements the grouping baseline so the comparison can be
//! run rather than argued: sites are grouped by their static instruction
//! and position bucket (instructions from the same code site at nearby
//! execution points — the "similar propagation path" heuristic), the
//! central site of each group is tested exhaustively, and its per-bit
//! outcome profile stands in for the whole group.

use crate::sample::SampleSet;
use ftb_inject::Injector;
use ftb_trace::GoldenRun;
use serde::{Deserialize, Serialize};

/// Configuration of the pilot-grouping estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PilotConfig {
    /// Number of position buckets each static instruction's dynamic
    /// instances are split into (more buckets = finer groups = more
    /// pilots = higher cost).
    pub buckets_per_static: usize,
}

impl Default for PilotConfig {
    fn default() -> Self {
        PilotConfig {
            buckets_per_static: 4,
        }
    }
}

/// Result of a pilot-grouping campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PilotEstimate {
    /// Per-site estimated SDC ratio (each site inherits its group
    /// pilot's ratio).
    pub per_site: Vec<f64>,
    /// The pilot experiments that were actually run.
    pub samples: SampleSet,
    /// Number of groups formed.
    pub n_groups: usize,
}

impl PilotEstimate {
    /// Estimated overall SDC ratio (mean over sites).
    pub fn overall_sdc_ratio(&self) -> f64 {
        if self.per_site.is_empty() {
            return 0.0;
        }
        self.per_site.iter().sum::<f64>() / self.per_site.len() as f64
    }
}

/// Group sites by `(static instruction, position bucket)` and return, per
/// group, its member sites (in execution order).
fn build_groups(golden: &GoldenRun, buckets: usize) -> Vec<Vec<usize>> {
    use std::collections::HashMap;
    // collect sites per static id, in execution order
    let mut per_static: HashMap<u32, Vec<usize>> = HashMap::new();
    for site in 0..golden.n_sites() {
        per_static
            .entry(golden.static_ids[site])
            .or_default()
            .push(site);
    }
    let mut ids: Vec<u32> = per_static.keys().copied().collect();
    ids.sort_unstable();
    let mut groups = Vec::new();
    for id in ids {
        let sites = &per_static[&id];
        let b = buckets.min(sites.len()).max(1);
        for chunk in sites.chunks(sites.len().div_ceil(b)) {
            groups.push(chunk.to_vec());
        }
    }
    groups
}

/// Run the pilot-grouping campaign: exhaustively test the central site of
/// every group and assign its SDC ratio to all members.
pub fn pilot_estimate(injector: &Injector<'_>, cfg: &PilotConfig) -> PilotEstimate {
    assert!(cfg.buckets_per_static > 0, "need at least one bucket");
    let golden = injector.golden();
    let groups = build_groups(golden, cfg.buckets_per_static);
    let bits = injector.bits();

    let mut per_site = vec![0.0; golden.n_sites()];
    let mut samples = SampleSet::new();
    for group in &groups {
        let pilot = group[group.len() / 2];
        let mut sdc = 0u32;
        for bit in 0..bits {
            let e = injector.run_one(pilot, bit);
            sdc += u32::from(e.outcome.is_sdc());
            samples.insert(e);
        }
        let ratio = f64::from(sdc) / f64::from(bits);
        for &site in group {
            per_site[site] = ratio;
        }
    }

    PilotEstimate {
        per_site,
        samples,
        n_groups: groups.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftb_inject::Classifier;
    use ftb_kernels::{Kernel, MatvecConfig, MatvecKernel, StencilConfig, StencilKernel};

    #[test]
    fn groups_partition_all_sites() {
        let k = StencilKernel::new(StencilConfig {
            grid: 6,
            sweeps: 3,
            ..StencilConfig::small()
        });
        let g = k.golden();
        let groups = build_groups(&g, 4);
        let mut covered: Vec<usize> = groups.iter().flatten().copied().collect();
        covered.sort_unstable();
        covered.dedup();
        assert_eq!(
            covered.len(),
            g.n_sites(),
            "groups must partition the sites"
        );
    }

    #[test]
    fn more_buckets_make_more_groups() {
        let k = StencilKernel::new(StencilConfig {
            grid: 6,
            sweeps: 3,
            ..StencilConfig::small()
        });
        let g = k.golden();
        let coarse = build_groups(&g, 1).len();
        let fine = build_groups(&g, 8).len();
        assert!(fine > coarse);
    }

    #[test]
    fn estimate_covers_every_site_with_group_cost() {
        let k = MatvecKernel::new(MatvecConfig {
            n: 5,
            ..MatvecConfig::small()
        });
        let inj = Injector::new(&k, Classifier::new(1e-6));
        let est = pilot_estimate(&inj, &PilotConfig::default());
        assert_eq!(est.per_site.len(), inj.n_sites());
        // cost = groups × bits, far below exhaustive
        assert_eq!(est.samples.len(), est.n_groups * 64);
        assert!((est.samples.len() as u64) < inj.golden().n_experiments());
        assert!((0.0..=1.0).contains(&est.overall_sdc_ratio()));
    }

    #[test]
    fn uniform_kernel_groups_estimate_exactly() {
        // matvec init sites of the same static instruction behave alike;
        // the pilot estimate of an init group should match the group's
        // true mean reasonably (spot check the structure, not accuracy)
        let k = MatvecKernel::new(MatvecConfig {
            n: 5,
            ..MatvecConfig::small()
        });
        let inj = Injector::new(&k, Classifier::new(1e-6));
        let est = pilot_estimate(
            &inj,
            &PilotConfig {
                buckets_per_static: 2,
            },
        );
        // every site got an estimate from some pilot
        let distinct: std::collections::HashSet<u64> =
            est.per_site.iter().map(|r| r.to_bits()).collect();
        assert!(distinct.len() <= est.n_groups + 1);
    }
}
