//! Per-static-instruction and per-region aggregation of site profiles.
//!
//! The paper interprets its per-dynamic-instruction results through
//! source structure ("initialization instructions", "a new loop is
//! started…", §4.2); this module gives that view as an API: fold any
//! per-site metric (predicted SDC, potential impact, thresholds) by the
//! static instruction or coarse region it belongs to.

use ftb_trace::{GoldenRun, Region, StaticRegistry};
use serde::Serialize;

/// Why a profile fold could not run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionError {
    /// The per-site metric vector does not match the golden run's site
    /// count — folding it would attribute values to the wrong
    /// instructions (or index out of bounds), so it is refused.
    MetricLengthMismatch {
        /// The golden run's dynamic-instruction count.
        expected: usize,
        /// The metric vector's length.
        got: usize,
    },
}

impl std::fmt::Display for RegionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegionError::MetricLengthMismatch { expected, got } => write!(
                f,
                "per-site metric has {got} entries but the golden run has \
                 {expected} dynamic instructions"
            ),
        }
    }
}

impl std::error::Error for RegionError {}

/// Aggregated statistics for one static instruction.
#[derive(Debug, Clone, Serialize)]
pub struct StaticProfile {
    /// Static-instruction name (e.g. `"cg.update.x"`).
    pub name: &'static str,
    /// Source region.
    pub region: Region,
    /// Number of dynamic instances.
    pub dynamic_sites: usize,
    /// Mean of the folded metric over the instances.
    pub mean: f64,
    /// Maximum of the folded metric over the instances.
    pub max: f64,
}

/// Fold a per-site metric by static instruction, returning one row per
/// static instruction that actually executed, sorted by descending mean.
///
/// # Errors
/// [`RegionError::MetricLengthMismatch`] if `per_site` does not match
/// the golden run's site count.
pub fn by_static_instruction(
    golden: &GoldenRun,
    registry: &StaticRegistry,
    per_site: &[f64],
) -> Result<Vec<StaticProfile>, RegionError> {
    if per_site.len() != golden.n_sites() {
        return Err(RegionError::MetricLengthMismatch {
            expected: golden.n_sites(),
            got: per_site.len(),
        });
    }
    let n = registry.len();
    let mut count = vec![0usize; n];
    let mut sum = vec![0.0f64; n];
    let mut max = vec![f64::NEG_INFINITY; n];
    for (site, &v) in per_site.iter().enumerate() {
        let sid = golden.static_id(site).index();
        count[sid] += 1;
        sum[sid] += v;
        max[sid] = max[sid].max(v);
    }
    let mut rows: Vec<StaticProfile> = registry
        .iter()
        .filter(|(id, _)| count[id.index()] > 0)
        .map(|(id, instr)| {
            let i = id.index();
            StaticProfile {
                name: instr.name,
                region: instr.region,
                dynamic_sites: count[i],
                mean: sum[i] / count[i] as f64,
                max: max[i],
            }
        })
        .collect();
    rows.sort_by(|a, b| {
        b.mean
            .partial_cmp(&a.mean)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    Ok(rows)
}

/// Aggregated statistics for one coarse [`Region`].
#[derive(Debug, Clone, Serialize)]
pub struct RegionProfile {
    /// The region.
    pub region: Region,
    /// Number of dynamic instances across the region's instructions.
    pub dynamic_sites: usize,
    /// Mean of the folded metric.
    pub mean: f64,
}

/// Fold a per-site metric by coarse region, sorted by descending mean.
///
/// # Errors
/// [`RegionError::MetricLengthMismatch`] if `per_site` does not match
/// the golden run's site count.
pub fn by_region(
    golden: &GoldenRun,
    registry: &StaticRegistry,
    per_site: &[f64],
) -> Result<Vec<RegionProfile>, RegionError> {
    let statics = by_static_instruction(golden, registry, per_site)?;
    let mut merged: Vec<RegionProfile> = Vec::new();
    for s in statics {
        match merged.iter_mut().find(|r| r.region == s.region) {
            Some(r) => {
                let total = r.mean * r.dynamic_sites as f64 + s.mean * s.dynamic_sites as f64;
                r.dynamic_sites += s.dynamic_sites;
                r.mean = total / r.dynamic_sites as f64;
            }
            None => merged.push(RegionProfile {
                region: s.region,
                dynamic_sites: s.dynamic_sites,
                mean: s.mean,
            }),
        }
    }
    merged.sort_by(|a, b| {
        b.mean
            .partial_cmp(&a.mean)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftb_kernels::{Kernel, StencilConfig, StencilKernel};

    #[test]
    fn static_fold_partitions_all_sites() {
        let k = StencilKernel::new(StencilConfig::small());
        let g = k.golden();
        let metric = vec![1.0; g.n_sites()];
        let rows = by_static_instruction(&g, &k.registry(), &metric).unwrap();
        let total: usize = rows.iter().map(|r| r.dynamic_sites).sum();
        assert_eq!(total, g.n_sites());
        for r in &rows {
            assert_eq!(r.mean, 1.0);
            assert_eq!(r.max, 1.0);
        }
    }

    #[test]
    fn static_fold_sorts_by_mean() {
        let k = StencilKernel::new(StencilConfig::small());
        let g = k.golden();
        // metric = site index, so later instructions average higher
        let metric: Vec<f64> = (0..g.n_sites()).map(|i| i as f64).collect();
        let rows = by_static_instruction(&g, &k.registry(), &metric).unwrap();
        for w in rows.windows(2) {
            assert!(w[0].mean >= w[1].mean);
        }
    }

    #[test]
    fn region_fold_merges_same_region_instructions() {
        let k = StencilKernel::new(StencilConfig::small());
        let g = k.golden();
        let metric = vec![2.0; g.n_sites()];
        let regions = by_region(&g, &k.registry(), &metric).unwrap();
        let total: usize = regions.iter().map(|r| r.dynamic_sites).sum();
        assert_eq!(total, g.n_sites());
        // stencil has init / compute / move regions
        assert!(regions.len() <= 3);
        for r in &regions {
            assert!((r.mean - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn length_mismatch_is_a_typed_error_not_a_panic() {
        let k = StencilKernel::new(StencilConfig::small());
        let g = k.golden();
        let n = g.n_sites();
        let err = by_static_instruction(&g, &k.registry(), &[1.0, 2.0]).unwrap_err();
        assert_eq!(
            err,
            RegionError::MetricLengthMismatch {
                expected: n,
                got: 2
            }
        );
        // the message names both lengths so the caller can spot the bug
        let msg = err.to_string();
        assert!(
            msg.contains("2 entries") && msg.contains(&n.to_string()),
            "{msg}"
        );
        // by_region forwards the same error
        assert_eq!(
            by_region(&g, &k.registry(), &[]).unwrap_err(),
            RegionError::MetricLengthMismatch {
                expected: n,
                got: 0
            }
        );
    }
}
