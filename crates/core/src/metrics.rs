//! Evaluation metrics: precision, recall, the self-verifying uncertainty
//! (paper §3.6), and the ΔSDC profile (paper §4.1/Figure 3).
//!
//! The boundary is treated like a trained classifier whose positive class
//! is "masked":
//!
//! * `Precision = M_positive / M_predict` — of all experiments predicted
//!   masked, the fraction truly masked;
//! * `Recall = M_positive / M_total` — of all truly masked experiments,
//!   the fraction the boundary finds;
//! * `Uncertainty = Ms_positive / Ms_predict` — precision restricted to
//!   the *sampled* experiments. Because it needs no ground truth beyond
//!   the samples already run, it lets an application programmer verify
//!   the boundary without an exhaustive campaign; §4.3 shows it tracks
//!   the true precision closely.

use crate::predict::Predictor;
use crate::sample::SampleSet;
use ftb_inject::{ExhaustiveResult, Outcome};
use serde::{Deserialize, Serialize};

/// Classifier-style evaluation of a boundary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundaryEval {
    /// Truly masked among predicted-masked, over the evaluated truth set.
    pub precision: f64,
    /// Predicted-masked among all truly masked.
    pub recall: f64,
    /// Number of experiments predicted masked (`M_predict`).
    pub m_predict: u64,
    /// Number of correct masked predictions (`M_positive`).
    pub m_positive: u64,
    /// Number of truly masked experiments (`M_total`).
    pub m_total: u64,
    /// Number of truth experiments evaluated.
    pub n_evaluated: u64,
}

impl BoundaryEval {
    /// Evaluate predictions against an arbitrary stream of ground-truth
    /// outcomes. Conventions: an empty predicted-masked set has precision
    /// 1 (no false claims); an empty truth-masked set has recall 1.
    pub fn from_truth<I>(predictor: &Predictor<'_>, truth: I) -> Self
    where
        I: IntoIterator<Item = (usize, u8, Outcome)>,
    {
        let mut m_predict = 0u64;
        let mut m_positive = 0u64;
        let mut m_total = 0u64;
        let mut n = 0u64;
        for (site, bit, actual) in truth {
            n += 1;
            let predicted_masked = predictor.predict(site, bit).is_masked();
            let actually_masked = actual.is_masked();
            m_predict += u64::from(predicted_masked);
            m_total += u64::from(actually_masked);
            m_positive += u64::from(predicted_masked && actually_masked);
        }
        BoundaryEval {
            precision: if m_predict == 0 {
                1.0
            } else {
                m_positive as f64 / m_predict as f64
            },
            recall: if m_total == 0 {
                1.0
            } else {
                m_positive as f64 / m_total as f64
            },
            m_predict,
            m_positive,
            m_total,
            n_evaluated: n,
        }
    }

    /// Evaluate against a full exhaustive campaign (the whole experiment
    /// space).
    pub fn against_exhaustive(predictor: &Predictor<'_>, truth: &ExhaustiveResult) -> Self {
        Self::from_truth(predictor, truth.iter())
    }

    /// The §3.6 uncertainty: precision over the sampled experiments only.
    /// Returns the same struct shape with `precision` holding
    /// `Ms_positive / Ms_predict`.
    pub fn uncertainty(predictor: &Predictor<'_>, samples: &SampleSet) -> Self {
        Self::from_truth(
            predictor,
            samples
                .experiments()
                .iter()
                .map(|e| (e.site, e.bit, e.outcome)),
        )
    }
}

/// Per-site SDC profile: the ground-truth and predicted vulnerability of
/// every dynamic instruction, plus their difference (ΔSDC).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SdcProfile {
    /// Ground-truth per-site SDC ratio.
    pub golden: Vec<f64>,
    /// Predicted per-site SDC ratio.
    pub predicted: Vec<f64>,
}

impl SdcProfile {
    /// Build the profile from an exhaustive truth and a predictor,
    /// optionally letting known sample outcomes override predictions.
    pub fn new(
        truth: &ExhaustiveResult,
        predictor: &Predictor<'_>,
        known: Option<&SampleSet>,
    ) -> Self {
        SdcProfile {
            golden: truth.sdc_ratio_per_site(),
            predicted: predictor.sdc_ratio_per_site(known),
        }
    }

    /// `ΔSDC_i = golden_i − predicted_i` per site (negative = the method
    /// overestimates the site's SDC ratio, the direction the paper
    /// reports for non-monotonic sites).
    pub fn delta(&self) -> Vec<f64> {
        delta_sdc(&self.golden, &self.predicted)
    }

    /// Overall (mean) golden and predicted SDC ratios.
    pub fn overall(&self) -> (f64, f64) {
        let n = self.golden.len().max(1) as f64;
        (
            self.golden.iter().sum::<f64>() / n,
            self.predicted.iter().sum::<f64>() / n,
        )
    }

    /// Fraction of sites whose prediction is exact (|ΔSDC| < tol).
    pub fn exact_fraction(&self, tol: f64) -> f64 {
        if self.golden.is_empty() {
            return 1.0;
        }
        let exact = self.delta().iter().filter(|d| d.abs() < tol).count();
        exact as f64 / self.golden.len() as f64
    }
}

/// `ΔSDC = golden − predicted`, elementwise.
///
/// # Panics
/// Panics on length mismatch.
pub fn delta_sdc(golden: &[f64], predicted: &[f64]) -> Vec<f64> {
    assert_eq!(golden.len(), predicted.len(), "profile length mismatch");
    golden.iter().zip(predicted).map(|(&g, &p)| g - p).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boundary::{golden_boundary, Boundary};
    use ftb_inject::{Classifier, Injector};
    use ftb_kernels::{MatvecConfig, MatvecKernel};
    use ftb_trace::{Precision, StaticId, Tracer};

    fn tiny_golden(vals: &[f64]) -> ftb_trace::GoldenRun {
        let mut t = Tracer::golden(Precision::F64);
        for &v in vals {
            t.value(StaticId(0), v);
        }
        t.finish_golden(vals.to_vec())
    }

    #[test]
    fn perfect_boundary_scores_perfectly() {
        let k = MatvecKernel::new(MatvecConfig {
            n: 4,
            ..MatvecConfig::small()
        });
        let inj = Injector::new(&k, Classifier::new(1e-6));
        let ex = inj.exhaustive();
        let b = golden_boundary(inj.golden(), &ex);
        let p = Predictor::new(inj.golden(), &b);
        let eval = BoundaryEval::against_exhaustive(&p, &ex);
        // the golden boundary never claims masked for an SDC case
        assert_eq!(
            eval.precision, 1.0,
            "golden boundary mispredicted an SDC case"
        );
        assert!(eval.recall > 0.5, "golden boundary recall {}", eval.recall);
        assert_eq!(eval.n_evaluated, ex.n_experiments());
    }

    #[test]
    fn zero_boundary_has_trivial_precision_and_zero_recall() {
        let g = tiny_golden(&[1.0, 2.0]);
        let b = Boundary::zero(2);
        let p = Predictor::new(&g, &b);
        // truth: everything masked
        let truth: Vec<(usize, u8, Outcome)> = (0..2usize)
            .flat_map(|s| (1..64u8).map(move |bit| (s, bit, Outcome::Masked)))
            .collect();
        let eval = BoundaryEval::from_truth(&p, truth);
        assert_eq!(eval.m_predict, 0);
        assert_eq!(eval.precision, 1.0, "vacuous precision convention");
        assert_eq!(eval.recall, 0.0);
    }

    #[test]
    fn uncertainty_equals_precision_on_the_sample_set_itself() {
        let k = MatvecKernel::new(MatvecConfig {
            n: 4,
            ..MatvecConfig::small()
        });
        let inj = Injector::new(&k, Classifier::new(1e-6));
        let ex = inj.exhaustive();
        let b = golden_boundary(inj.golden(), &ex);
        let p = Predictor::new(inj.golden(), &b);
        // a "sample set" that is the whole space: uncertainty == precision
        let mut all = SampleSet::new();
        for site in 0..inj.n_sites() {
            for bit in 0..64u8 {
                all.insert(ftb_inject::Experiment {
                    site,
                    bit,
                    injected_err: 0.0,
                    output_err: 0.0,
                    outcome: ex.outcome(site, bit),
                });
            }
        }
        let eval = BoundaryEval::against_exhaustive(&p, &ex);
        let unc = BoundaryEval::uncertainty(&p, &all);
        assert!((eval.precision - unc.precision).abs() < 1e-12);
    }

    #[test]
    fn delta_sdc_signs() {
        let d = delta_sdc(&[0.5, 0.2], &[0.4, 0.6]);
        assert!((d[0] - 0.1).abs() < 1e-15, "underestimate is positive");
        assert!((d[1] + 0.4).abs() < 1e-15, "overestimate is negative");
    }

    #[test]
    fn profile_overall_and_exact_fraction() {
        let p = SdcProfile {
            golden: vec![0.5, 0.5],
            predicted: vec![0.5, 1.0],
        };
        let (g, pr) = p.overall();
        assert!((g - 0.5).abs() < 1e-15);
        assert!((pr - 0.75).abs() < 1e-15);
        assert!((p.exact_fraction(1e-6) - 0.5).abs() < 1e-15);
    }

    #[test]
    #[should_panic]
    fn delta_sdc_length_mismatch_panics() {
        let _ = delta_sdc(&[0.1], &[0.1, 0.2]);
    }
}
