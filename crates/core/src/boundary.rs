//! The fault tolerance boundary data structure.

use ftb_inject::ExhaustiveResult;
use ftb_trace::GoldenRun;
use serde::{Deserialize, Serialize};

/// A program's fault tolerance boundary: per dynamic instruction, the
/// inferred maximum tolerable injected error `Δe` (paper §3.2).
///
/// `Δe = 0` means *no information*: the conservative floor ("the smallest
/// possible threshold value for a dynamic instruction is zero"). The
/// boundary also tracks, per site, how many masked-propagation
/// observations supported the threshold — the `S_i` information count
/// driving the §3.4 adaptive sampler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Boundary {
    thresholds: Vec<f64>,
    support: Vec<u32>,
}

impl Boundary {
    /// The all-zero (fully conservative) boundary over `n_sites` sites.
    pub fn zero(n_sites: usize) -> Self {
        Boundary {
            thresholds: vec![0.0; n_sites],
            support: vec![0; n_sites],
        }
    }

    /// Construct directly from threshold values (support set to 1 where
    /// the threshold is positive). Mostly useful in tests and for the
    /// exhaustive golden boundary.
    pub fn from_thresholds(thresholds: Vec<f64>) -> Self {
        let support = thresholds.iter().map(|&t| u32::from(t > 0.0)).collect();
        Boundary {
            thresholds,
            support,
        }
    }

    /// Construct from the static analyzer's analytical thresholds
    /// (`ftb-core::staticbound`). Non-finite entries (sites with no path
    /// to any sink) clamp to `f64::MAX` — any *finite* perturbation is
    /// certified there, while non-finite flips stay with the crash-aware
    /// predictor. Each positive threshold carries support 1: one
    /// analytical certificate, the seed for the §3.4 information count.
    pub fn from_static(thresholds: &[f64]) -> Self {
        let thresholds: Vec<f64> = thresholds
            .iter()
            .map(|&t| if t.is_finite() { t.max(0.0) } else { f64::MAX })
            .collect();
        let support = thresholds.iter().map(|&t| u32::from(t > 0.0)).collect();
        Boundary {
            thresholds,
            support,
        }
    }

    /// Construct from the compositional analyzer's composed thresholds
    /// (`ftb-core::compose`). Non-finite or negative entries clamp to
    /// the conservative floor `0` — unlike the static bound, a composed
    /// threshold is rooted in finite empirical budgets, so an unbounded
    /// value can only mean "no information". Positive thresholds carry
    /// support 1: one composed certificate.
    pub fn from_composed(thresholds: Vec<f64>) -> Self {
        let thresholds: Vec<f64> = thresholds
            .into_iter()
            .map(|t| if t.is_finite() { t.max(0.0) } else { 0.0 })
            .collect();
        let support = thresholds.iter().map(|&t| u32::from(t > 0.0)).collect();
        Boundary {
            thresholds,
            support,
        }
    }

    /// Seed this boundary with a prior (typically a static analysis):
    /// thresholds take the pointwise max — both are valid lower-bound
    /// certificates — and the prior's support counts add in. Merging a
    /// [`Boundary::zero`] prior is the identity.
    ///
    /// # Panics
    /// Panics on size mismatch.
    pub fn merge_prior(&mut self, prior: &Boundary) {
        assert_eq!(self.n_sites(), prior.n_sites(), "boundary size mismatch");
        for i in 0..self.thresholds.len() {
            if prior.thresholds[i] > self.thresholds[i] {
                self.thresholds[i] = prior.thresholds[i];
            }
            self.support[i] = self.support[i].saturating_add(prior.support[i]);
        }
    }

    /// Number of sites covered.
    #[inline]
    pub fn n_sites(&self) -> usize {
        self.thresholds.len()
    }

    /// The threshold `Δe` at `site`.
    #[inline]
    pub fn threshold(&self, site: usize) -> f64 {
        self.thresholds[site]
    }

    /// All thresholds.
    pub fn thresholds(&self) -> &[f64] {
        &self.thresholds
    }

    /// Number of masked-propagation observations folded into `site`.
    #[inline]
    pub fn support(&self, site: usize) -> u32 {
        self.support[site]
    }

    /// Algorithm 1's fold: raise the threshold at `site` to at least
    /// `err` (a perturbation a masked run was observed to tolerate) and
    /// count the observation. Non-finite observations are ignored — a
    /// masked run cannot genuinely certify an unbounded perturbation.
    #[inline]
    pub fn observe(&mut self, site: usize, err: f64) {
        if !err.is_finite() {
            return;
        }
        let t = &mut self.thresholds[site];
        if err > *t {
            *t = err;
        }
        self.support[site] += 1;
    }

    /// Merge another boundary into this one (parallel reduction: the
    /// per-site max of two valid lower-bound certificates is valid).
    ///
    /// # Panics
    /// Panics on size mismatch.
    pub fn merge(&mut self, other: &Boundary) {
        assert_eq!(self.n_sites(), other.n_sites(), "boundary size mismatch");
        for i in 0..self.thresholds.len() {
            if other.thresholds[i] > self.thresholds[i] {
                self.thresholds[i] = other.thresholds[i];
            }
            self.support[i] += other.support[i];
        }
    }

    /// Cap the threshold at `site` strictly below `cap` (used when a new
    /// SDC observation with injected error `cap` arrives after masked
    /// propagation data was already folded in — the incremental form of
    /// the §3.5 filter operation).
    #[inline]
    pub fn clamp_below(&mut self, site: usize, cap: f64) {
        if cap.is_finite() && self.thresholds[site] >= cap {
            self.thresholds[site] = cap.next_down().max(0.0);
        }
    }

    /// Whether the boundary predicts an injected error of magnitude `err`
    /// at `site` to be masked (`err ≤ Δe_site`).
    #[inline]
    pub fn predicts_masked(&self, site: usize, err: f64) -> bool {
        err <= self.thresholds[site]
    }

    /// Fraction of sites with any information (`Δe > 0`).
    pub fn coverage(&self) -> f64 {
        if self.thresholds.is_empty() {
            return 0.0;
        }
        let covered = self.thresholds.iter().filter(|&&t| t > 0.0).count();
        covered as f64 / self.thresholds.len() as f64
    }
}

/// Build the *golden* boundary from an exhaustive campaign (paper §4.1):
/// at each site the threshold is the largest masked injected error that is
/// still **below every SDC-causing injected error** at that site —
/// "the maximum value that results in a masked outcome, but is also less
/// than the minimum value that results in SDC".
///
/// Non-monotonic sites (a small error causes SDC while some larger error
/// is masked) therefore get a conservative threshold, which is exactly
/// the source of the small ΔSDC overestimation the paper reports in its
/// Figure 3.
pub fn golden_boundary(golden: &GoldenRun, exhaustive: &ExhaustiveResult) -> Boundary {
    assert_eq!(
        golden.n_sites(),
        exhaustive.n_sites,
        "golden/exhaustive mismatch"
    );
    let bits = exhaustive.bits;
    let mut b = Boundary::zero(golden.n_sites());
    for site in 0..golden.n_sites() {
        let errs = golden.flip_errors(site);
        let mut min_sdc = f64::INFINITY;
        for bit in 0..bits {
            if exhaustive.outcome(site, bit).is_sdc() {
                min_sdc = min_sdc.min(errs[bit as usize]);
            }
        }
        let mut best = 0.0f64;
        for bit in 0..bits {
            let e = errs[bit as usize];
            if exhaustive.outcome(site, bit).is_masked() && e < min_sdc && e.is_finite() {
                best = best.max(e);
            }
        }
        if best > 0.0 {
            b.observe(site, best);
        }
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftb_inject::{Classifier, Injector, Outcome};
    use ftb_kernels::{MatvecConfig, MatvecKernel};

    #[test]
    fn zero_boundary_predicts_nothing_masked_except_zero_error() {
        let b = Boundary::zero(4);
        assert!(b.predicts_masked(0, 0.0), "zero error is always tolerable");
        assert!(!b.predicts_masked(0, 1e-300));
        assert_eq!(b.coverage(), 0.0);
    }

    #[test]
    fn observe_takes_running_max_and_counts_support() {
        let mut b = Boundary::zero(2);
        b.observe(0, 1.0);
        b.observe(0, 0.5);
        b.observe(0, 2.0);
        assert_eq!(b.threshold(0), 2.0);
        assert_eq!(b.support(0), 3);
        assert_eq!(b.threshold(1), 0.0);
        assert_eq!(b.coverage(), 0.5);
    }

    #[test]
    fn observe_ignores_non_finite() {
        let mut b = Boundary::zero(1);
        b.observe(0, f64::INFINITY);
        b.observe(0, f64::NAN);
        assert_eq!(b.threshold(0), 0.0);
        assert_eq!(b.support(0), 0);
    }

    #[test]
    fn merge_is_pointwise_max() {
        let mut a = Boundary::zero(3);
        a.observe(0, 1.0);
        a.observe(2, 5.0);
        let mut b = Boundary::zero(3);
        b.observe(0, 3.0);
        b.observe(1, 2.0);
        a.merge(&b);
        assert_eq!(a.thresholds(), &[3.0, 2.0, 5.0]);
        assert_eq!(a.support(0), 2);
    }

    #[test]
    #[should_panic]
    fn merge_size_mismatch_panics() {
        let mut a = Boundary::zero(2);
        a.merge(&Boundary::zero(3));
    }

    #[test]
    fn golden_boundary_separates_masked_from_sdc() {
        let k = MatvecKernel::new(MatvecConfig {
            n: 4,
            ..MatvecConfig::small()
        });
        let inj = Injector::new(&k, Classifier::new(1e-6));
        let ex = inj.exhaustive();
        let b = golden_boundary(inj.golden(), &ex);
        // every monotonic site: prediction from the boundary reproduces
        // the exhaustive outcome exactly for masked/SDC experiments below
        // the threshold
        let g = inj.golden();
        let mut checked = 0;
        for site in 0..g.n_sites() {
            let errs = g.flip_errors(site);
            for bit in 0..64u8 {
                let truth = ex.outcome(site, bit);
                if truth.is_masked() && b.predicts_masked(site, errs[bit as usize]) {
                    checked += 1;
                }
                // no SDC experiment may sit below the golden threshold
                if truth.is_sdc() {
                    assert!(
                        !b.predicts_masked(site, errs[bit as usize])
                            || errs[bit as usize] == b.threshold(site),
                        "SDC below golden threshold at site {site} bit {bit}"
                    );
                }
            }
            // SDC strictly below threshold is impossible by construction
            let min_sdc = (0..64u8)
                .filter(|&bit| ex.outcome(site, bit).is_sdc())
                .map(|bit| errs[bit as usize])
                .fold(f64::INFINITY, f64::min);
            assert!(
                b.threshold(site) < min_sdc || min_sdc.is_infinite(),
                "threshold {} not below min SDC error {min_sdc} at {site}",
                b.threshold(site)
            );
        }
        assert!(
            checked > 0,
            "golden boundary certified no masked cases at all"
        );
    }

    #[test]
    fn golden_boundary_counts_match_outcomes() {
        let k = MatvecKernel::new(MatvecConfig {
            n: 4,
            ..MatvecConfig::small()
        });
        let inj = Injector::new(&k, Classifier::new(1e-6));
        let ex = inj.exhaustive();
        let b = golden_boundary(inj.golden(), &ex);
        // any site with at least one finite-error masked outcome below all
        // its SDC errors must be covered
        for (site, _, o) in ex.iter() {
            if o == Outcome::Masked && b.threshold(site) > 0.0 {
                assert!(b.support(site) >= 1);
            }
        }
    }
}
