//! # ftb-core
//!
//! The fault tolerance boundary — the primary contribution of the PPoPP'21
//! paper *"Understanding a Program's Resiliency Through Error
//! Propagation"* (Li, Menon, Livnat, Bremer, Mohror, Pascucci).
//!
//! A program's **fault tolerance boundary** assigns every dynamic
//! instruction `i` a threshold `Δe_i`: the largest error that can be
//! injected at `i` such that any error `ε ≤ Δe_i` still yields an
//! acceptable program output (paper §3.2). Knowing the boundary gives a
//! *full-resolution* resiliency profile — the predicted SDC ratio of
//! every single dynamic instruction — without an exhaustive
//! `sites × bits` fault-injection campaign.
//!
//! The pipeline, crate by crate:
//!
//! 1. `ftb-trace` + `ftb-kernels` record a golden run of an instrumented
//!    kernel;
//! 2. `ftb-inject` runs a *small* set of fault-injection experiments;
//! 3. this crate infers the boundary from the **error propagation data of
//!    the masked experiments** (Algorithm 1, [`infer`]): if an error
//!    injected at `i` propagated a perturbation `Δe` to instruction `k`
//!    and the run was still acceptable, then `k` tolerates at least `Δe`;
//! 4. [`predict`] turns the boundary into per-site outcome predictions —
//!    for any untested `(site, bit)` the corrupted value is computable
//!    from the golden trace alone, so prediction needs **zero** further
//!    executions;
//! 5. [`metrics`] scores predictions (precision/recall against ground
//!    truth, and the self-verifying *uncertainty* of §3.6 that needs no
//!    ground truth at all);
//! 6. [`adaptive`] closes the loop with the §3.4 progressive sampler that
//!    biases new experiments toward under-informed sites and prunes
//!    already-predicted-masked candidates from the sample space.
//!
//! ## Quickstart
//!
//! ```
//! use ftb_core::prelude::*;
//! use ftb_kernels::{MatvecConfig, MatvecKernel};
//!
//! let kernel = MatvecKernel::new(MatvecConfig { n: 4, ..MatvecConfig::small() });
//! let analysis = Analysis::new(&kernel, Classifier::new(1e-6));
//!
//! // sample 20% of sites uniformly, infer the boundary with the filter on
//! let samples = analysis.sample_uniform(0.20, /*seed=*/ 7);
//! let inference = analysis.infer(&samples, FilterMode::PerSite);
//!
//! // predict every experiment in the space and self-verify
//! let uncertainty = analysis.uncertainty(&inference.boundary, &samples);
//! assert!(uncertainty > 0.5);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod absint;
pub mod adaptive;
pub mod analysis;
pub mod boundary;
pub mod compose;
pub mod infer;
pub mod metrics;
pub mod pilot;
pub mod predict;
pub mod protection;
pub mod region;
pub mod sample;
pub mod staticbound;

pub use absint::{
    forward_pass, safe_bit_masks, AbsIntError, BitClass, BitMasks, ForwardConfig, ForwardIntervals,
    Interval, MaskSource,
};
pub use adaptive::{
    adaptive_boundary, adaptive_boundary_with_prior, AdaptiveConfig, AdaptiveResult, AdaptiveState,
    RoundStats,
};
pub use analysis::Analysis;
pub use boundary::{golden_boundary, Boundary};
pub use compose::{
    compose_analysis, compose_thresholds, plan_incremental, ComposeConfig, ComposeError,
    ComposeParams, ComposeResult, Composed, IncrementalPlan, SectionDag,
};
pub use infer::{infer_boundary, infer_boundary_streaming, FilterMode, Inference};
pub use metrics::{delta_sdc, BoundaryEval, SdcProfile};
pub use pilot::{pilot_estimate, PilotConfig, PilotEstimate};
pub use predict::{crash_known_set, PredictedOutcome, Predictor};
pub use protection::ProtectionPlan;
pub use region::{by_region, by_static_instruction, RegionError, RegionProfile, StaticProfile};
pub use sample::SampleSet;
pub use staticbound::{
    static_bound, validate_static, StaticBound, StaticBoundConfig, StaticBoundError,
    StaticValidation,
};

/// Convenient single-import surface.
pub mod prelude {
    pub use crate::absint::{
        forward_pass, safe_bit_masks, BitClass, BitMasks, ForwardConfig, ForwardIntervals,
        Interval, MaskSource,
    };
    pub use crate::adaptive::{
        adaptive_boundary, adaptive_boundary_with_prior, AdaptiveConfig, AdaptiveResult,
        AdaptiveState,
    };
    pub use crate::analysis::Analysis;
    pub use crate::boundary::{golden_boundary, Boundary};
    pub use crate::compose::{
        compose_analysis, compose_thresholds, ComposeConfig, ComposeError, ComposeParams,
        ComposeResult, SectionDag,
    };
    pub use crate::infer::{infer_boundary, FilterMode, Inference};
    pub use crate::metrics::{delta_sdc, BoundaryEval, SdcProfile};
    pub use crate::pilot::{pilot_estimate, PilotConfig, PilotEstimate};
    pub use crate::predict::{crash_known_set, PredictedOutcome, Predictor};
    pub use crate::protection::ProtectionPlan;
    pub use crate::region::{by_region, by_static_instruction, RegionError};
    pub use crate::sample::SampleSet;
    pub use crate::staticbound::{
        static_bound, validate_static, StaticBound, StaticBoundConfig, StaticValidation,
    };
    pub use ftb_inject::{Classifier, ExtractionMode, Injector, Outcome};
}
