//! The backward amplification sweep — the analytical heart of the static
//! boundary.
//!
//! Work in *reciprocal-threshold* space: for each site `i`, accumulate
//!
//! ```text
//! R_i = Σ_{output sinks s reachable from i}  (Π path amps) · amp_s / T
//!     + Σ_{branch sinks s reachable from i}  (Π path amps) · amp_s / margin_s
//! ```
//!
//! so that `Δe_i^static = 1/R_i`: a perturbation `ε ≤ 1/R_i` contributes
//! at most `T` to any output element and stays below every reached branch
//! margin. Summing over parallel paths is the triangle inequality — the
//! perturbations arriving at a reconvergence point can at worst add — so
//! the bound is conservative under path reconvergence.
//!
//! The whole sum folds in **one reverse sweep** over the edge list:
//! edges are recorded in non-decreasing use order and every def strictly
//! precedes its use in the dynamic-instruction order, so iterating the
//! list backwards visits each site's out-edges only after that site's own
//! accumulator is final (the list is a topological order).
//!
//! Curvature caps ([`ftb_trace::OpKind`]'s non-linear rows) enter as
//! `eff(u) = max(R_u, 1/cap_u)`: a def's perturbation must stay below
//! both the downstream budget `1/R_u` *and* the cap that keeps `u`'s own
//! out-edge amplifications valid.

use crate::boundary::Boundary;
use ftb_trace::Ddg;

/// The static analysis result: one analytical threshold per dynamic
/// instruction.
#[derive(Debug, Clone, PartialEq)]
pub struct StaticBound {
    /// `Δe_i^static` per site. Sites with no path to any sink hold
    /// `f64::MAX` — no finite perturbation there can affect the output
    /// or control flow (the crash-aware predictor still intercepts
    /// non-finite flips at such sites).
    pub thresholds: Vec<f64>,
    /// Sites with at least one path to a sink (`R_i > 0`).
    pub n_constrained: usize,
    /// Number of value-flow edges the sweep folded.
    pub n_edges: usize,
}

impl StaticBound {
    /// Number of dynamic instructions covered.
    pub fn n_sites(&self) -> usize {
        self.thresholds.len()
    }

    /// Convert to a [`Boundary`] usable by the predictor and as an
    /// adaptive-sampler prior (each positive threshold counts as one
    /// analytical certificate of support).
    pub fn boundary(&self) -> Boundary {
        Boundary::from_static(&self.thresholds)
    }
}

/// Execute the reverse sweep. `safety ≥ 1` divides every threshold.
///
/// Infinities propagate soundly: a zero branch margin or degenerate
/// operand drives the affected reciprocals to `+∞`, i.e. threshold `0` —
/// the analysis refuses to certify anything for such sites rather than
/// guessing.
pub fn backward_pass(ddg: &Ddg, tolerance: f64, safety: f64) -> StaticBound {
    let n = ddg.n_sites;
    let mut recip = vec![0.0f64; n];
    let mut cap = vec![f64::INFINITY; n];

    for &(s, c) in &ddg.caps {
        let s = s as usize;
        if c < cap[s] {
            cap[s] = c;
        }
    }
    for &(d, amp) in &ddg.out_sinks {
        if amp > 0.0 {
            recip[d as usize] += amp / tolerance;
        }
    }
    for &(d, amp, margin) in &ddg.branch_sinks {
        if amp > 0.0 {
            recip[d as usize] += if margin > 0.0 {
                amp / margin
            } else {
                f64::INFINITY
            };
        }
    }

    for k in (0..ddg.defs.len()).rev() {
        let amp = ddg.amps[k];
        if amp <= 0.0 {
            // zero amplification: the operand provably cannot influence
            // the use at first order, and its secant rows guard the rest
            continue;
        }
        let u = ddg.uses[k] as usize;
        let eff = recip[u].max(1.0 / cap[u]);
        if eff > 0.0 {
            recip[ddg.defs[k] as usize] += amp * eff;
        }
    }

    let mut n_constrained = 0usize;
    let thresholds = recip
        .iter()
        .zip(&cap)
        .map(|(&r, &c)| {
            let t = if r > 0.0 {
                n_constrained += 1;
                (1.0 / r).min(c)
            } else {
                c
            } / safety;
            if t.is_finite() {
                t
            } else {
                f64::MAX
            }
        })
        .collect();

    StaticBound {
        thresholds,
        n_constrained,
        n_edges: ddg.n_edges(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftb_trace::{OpKind, Precision, StaticId, Tracer};

    const SID: StaticId = StaticId(0);

    /// Hand-build a graph through the tracer: a 3-site chain
    /// `s0 --×2--> s1 --×5--> s2 --(out, amp 1)`.
    fn chain() -> Ddg {
        let mut t = Tracer::golden(Precision::F64).with_ddg();
        t.value(SID, 1.0); // s0
        t.dep(0, OpKind::Scale(2.0));
        t.value(SID, 2.0); // s1
        t.dep(1, OpKind::Scale(5.0));
        t.value(SID, 10.0); // s2
        t.out_dep(2, 1.0);
        let (_, ddg) = t.finish_golden_with_ddg(vec![10.0]);
        ddg
    }

    #[test]
    fn chain_multiplies_amplifications() {
        let b = backward_pass(&chain(), 0.1, 1.0);
        // s2: budget T = 0.1; s1: 0.1/5; s0: 0.1/10
        assert_eq!(b.thresholds[2], 0.1);
        assert!((b.thresholds[1] - 0.02).abs() < 1e-15);
        assert!((b.thresholds[0] - 0.01).abs() < 1e-15);
        assert_eq!(b.n_constrained, 3);
    }

    #[test]
    fn parallel_paths_sum_reciprocals() {
        // diamond: s0 feeds s1 and s2 (amp 1 each), both feed s3 (amp 1)
        let mut t = Tracer::golden(Precision::F64).with_ddg();
        t.value(SID, 1.0);
        t.dep(0, OpKind::Linear);
        t.value(SID, 1.0);
        t.dep(0, OpKind::Linear);
        t.value(SID, 1.0);
        t.dep(1, OpKind::Linear);
        t.dep(2, OpKind::Linear);
        t.value(SID, 2.0);
        t.out_dep(3, 1.0);
        let (_, ddg) = t.finish_golden_with_ddg(vec![2.0]);
        let b = backward_pass(&ddg, 1.0, 1.0);
        // two unit-amp paths reconverge: δ at s0 moves s3 by 2δ
        assert!((b.thresholds[0] - 0.5).abs() < 1e-15);
        assert_eq!(b.thresholds[1], 1.0);
        assert_eq!(b.thresholds[3], 1.0);
    }

    #[test]
    fn unreached_sites_are_unconstrained() {
        let mut t = Tracer::golden(Precision::F64).with_ddg();
        t.value(SID, 1.0); // s0: dead
        t.value(SID, 2.0); // s1: output
        t.out_dep(1, 1.0);
        let (_, ddg) = t.finish_golden_with_ddg(vec![2.0]);
        let b = backward_pass(&ddg, 1e-3, 1.0);
        assert_eq!(b.thresholds[0], f64::MAX);
        assert_eq!(b.thresholds[1], 1e-3);
        assert_eq!(b.n_constrained, 1);
    }

    #[test]
    fn branch_margin_constrains_like_tolerance() {
        let mut t = Tracer::golden(Precision::F64).with_ddg();
        t.value(SID, 5.0);
        t.branch_dep(0, 1.0, 0.25);
        t.branch(true);
        t.value(SID, 1.0);
        t.out_dep(1, 1.0);
        let (_, ddg) = t.finish_golden_with_ddg(vec![1.0]);
        let b = backward_pass(&ddg, 1.0, 1.0);
        assert!((b.thresholds[0] - 0.25).abs() < 1e-15);
    }

    #[test]
    fn zero_margin_refuses_to_certify() {
        let mut t = Tracer::golden(Precision::F64).with_ddg();
        t.value(SID, 5.0);
        t.branch_dep(0, 1.0, 0.0);
        t.branch(true);
        t.value(SID, 1.0);
        t.out_dep(1, 1.0);
        let (_, ddg) = t.finish_golden_with_ddg(vec![1.0]);
        let b = backward_pass(&ddg, 1.0, 1.0);
        assert_eq!(b.thresholds[0], 0.0);
    }

    #[test]
    fn curvature_cap_clips_the_certificate() {
        // s0 --Square(x=2)--> s1 --out: amp 6, cap 2. With a huge
        // tolerance the cap, not the budget, limits the certificate.
        let mut t = Tracer::golden(Precision::F64).with_ddg();
        t.value(SID, 2.0);
        t.dep(0, OpKind::Square(2.0));
        t.value(SID, 4.0);
        t.out_dep(1, 1.0);
        let (_, ddg) = t.finish_golden_with_ddg(vec![4.0]);
        let b = backward_pass(&ddg, 1e6, 1.0);
        assert_eq!(b.thresholds[0], 2.0, "cap must clip the huge budget");
        let tight = backward_pass(&ddg, 0.06, 1.0);
        assert!((tight.thresholds[0] - 0.01).abs() < 1e-15, "budget binds");
    }

    #[test]
    fn safety_factor_divides_thresholds() {
        let a = backward_pass(&chain(), 0.1, 1.0);
        let b = backward_pass(&chain(), 0.1, 2.0);
        for (x, y) in a.thresholds.iter().zip(&b.thresholds) {
            if *x != f64::MAX {
                assert!((y - x / 2.0).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn boundary_conversion_clamps_and_supports() {
        let b = backward_pass(&chain(), 0.1, 1.0).boundary();
        assert_eq!(b.n_sites(), 3);
        assert!(b.threshold(0) > 0.0);
        assert_eq!(b.support(0), 1);
    }
}
