//! Calibration of the static boundary against injection ground truth —
//! the paper's §3.6 metrics applied to the zero-injection predictor.
//!
//! The acceptance story of the static analysis is *conservatism*: every
//! experiment it predicts masked must truly be masked (precision → 1),
//! while recall measures how much of the masked space the analytical
//! bound manages to certify. The §3.6 uncertainty — precision restricted
//! to a pinned-seed sample — is what a user can compute without an
//! exhaustive campaign, exactly as for the inferred boundary.

use crate::metrics::BoundaryEval;
use crate::predict::Predictor;
use crate::sample::SampleSet;
use ftb_inject::ExhaustiveResult;
use ftb_trace::GoldenRun;
use serde::{Deserialize, Serialize};

/// How a static boundary scores against injection ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StaticValidation {
    /// Precision/recall against the full exhaustive campaign.
    pub eval: BoundaryEval,
    /// The §3.6 uncertainty: precision over the sampled experiments only.
    pub uncertainty: f64,
    /// Fraction of sites with a known SDC outcome whose static threshold
    /// sits strictly below the site's *minimum SDC-causing injected
    /// error* — the per-site conservativeness rate. (The empirical
    /// golden threshold is the wrong envelope for this check: flip
    /// errors are discrete, so a sound analytical bound may exceed the
    /// largest *realizable* masked error without ever admitting an SDC.)
    pub conservative_fraction: f64,
    /// Median of `min_sdc_error / static_threshold` over those sites:
    /// the analytical bound's median headroom to the first harmful
    /// error (`> 1` means conservative by that factor).
    pub median_slack: f64,
    /// Injections spent producing the static boundary itself — zero by
    /// construction; recorded so artifacts carry the claim explicitly.
    pub n_injections_static: u64,
}

/// Score a static boundary (via its `predictor`) against an exhaustive
/// campaign and a pinned-seed sample. `golden` supplies the per-site
/// flip-error table used to locate each site's minimum SDC error.
pub fn validate_static(
    predictor: &Predictor<'_>,
    truth: &ExhaustiveResult,
    samples: &SampleSet,
    golden: &GoldenRun,
    static_thresholds: &[f64],
) -> StaticValidation {
    let eval = BoundaryEval::against_exhaustive(predictor, truth);
    let uncertainty = BoundaryEval::uncertainty(predictor, samples).precision;

    let mut conservative = 0usize;
    let mut constrained = 0usize;
    let mut slacks: Vec<f64> = Vec::new();
    for (site, &s) in static_thresholds.iter().enumerate().take(truth.n_sites) {
        let errs = golden.flip_errors(site);
        let min_sdc = (0..truth.bits)
            .filter(|&bit| truth.outcome(site, bit).is_sdc())
            .map(|bit| errs[bit as usize])
            .fold(f64::INFINITY, f64::min);
        if !min_sdc.is_finite() {
            continue; // no SDC observed: nothing to violate
        }
        constrained += 1;
        if s < min_sdc {
            conservative += 1;
            if s > 0.0 {
                slacks.push(min_sdc / s);
            }
        }
    }
    slacks.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median_slack = if slacks.is_empty() {
        f64::NAN
    } else {
        slacks[slacks.len() / 2]
    };

    StaticValidation {
        eval,
        uncertainty,
        conservative_fraction: if constrained == 0 {
            1.0
        } else {
            conservative as f64 / constrained as f64
        },
        median_slack,
        n_injections_static: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predict::Predictor;
    use crate::staticbound::{static_bound, StaticBoundConfig};
    use ftb_inject::{Classifier, Injector};
    use ftb_kernels::{GemmConfig, GemmKernel, Kernel};

    #[test]
    fn gemm_static_bound_is_conservative() {
        let k = GemmKernel::new(GemmConfig {
            n: 5,
            ..GemmConfig::small()
        });
        let tol = 1e-6;
        let (golden, ddg) = k.golden_with_ddg();
        let sb = static_bound(&ddg, &StaticBoundConfig::new(tol)).unwrap();
        let static_b = sb.boundary();

        let inj = Injector::with_golden(&k, golden, Classifier::new(tol));
        let truth = inj.exhaustive();
        let predictor = Predictor::new(inj.golden(), &static_b);

        let samples = SampleSet::sample_sites(&inj, (inj.n_sites() / 4).max(1), 7);

        let v = validate_static(&predictor, &truth, &samples, inj.golden(), &sb.thresholds);
        // GEMM is exactly linear per injected operand: no masked-predicted
        // experiment may be SDC in truth
        assert_eq!(
            v.eval.precision, 1.0,
            "static bound overcertified: {:?}",
            v.eval
        );
        assert!(v.eval.recall > 0.1, "recall collapsed: {:?}", v.eval);
        assert!(v.uncertainty >= 0.99, "uncertainty {}", v.uncertainty);
        assert_eq!(v.n_injections_static, 0);
        assert!(
            v.conservative_fraction > 0.95,
            "conservativeness {}",
            v.conservative_fraction
        );
        assert!(v.median_slack >= 1.0, "slack {}", v.median_slack);
    }
}
