//! Static error-propagation analysis: fault-tolerance boundaries with
//! **zero injection experiments**.
//!
//! The paper infers every threshold `Δe_i` empirically — each bit of
//! boundary information costs a kernel execution (§3.2–3.5). This module
//! derives an *analytical lower bound* `Δe_i^static` instead, from the
//! operand-provenance data-dependence graph ([`ftb_trace::Ddg`]) the
//! golden run records:
//!
//! 1. every DDG edge carries a local amplification factor (an upper bound
//!    on `|∂use/∂def|` at the golden operand values, see
//!    [`ftb_trace::OpKind`]);
//! 2. the classifier's output tolerance `T` anchors output sinks, and
//!    branch margins anchor control-flow sinks;
//! 3. a single backward sweep ([`backward::backward_pass`]) folds the
//!    per-path amplification products into a per-site *reciprocal
//!    threshold* `R_i = Σ_paths Π amps / sink_budget`, summing over
//!    parallel paths (triangle inequality), so `Δe_i^static = 1/R_i` —
//!    clipped by any curvature cap along the way.
//!
//! Any perturbation `ε ≤ Δe_i^static` at site `i` provably changes every
//! output element by at most `T` and flips no recorded branch, **for the
//! single-edge secant bounds recorded** — the one caveat is cross terms
//! of a perturbation reaching both operands of a product (see the
//! DESIGN.md soundness discussion). The bound needs no injections; the
//! [`calibrate`] layer scores it against injection ground truth with the
//! paper's §3.6 precision/recall/uncertainty metrics.

pub mod backward;
pub mod calibrate;

pub use backward::{backward_pass, StaticBound};
pub use calibrate::{validate_static, StaticValidation};

use ftb_trace::Ddg;

/// Configuration of the static boundary analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaticBoundConfig {
    /// The output tolerance `T` — must equal the dynamic classifier's
    /// tolerance for the calibration metrics to be meaningful.
    pub tolerance: f64,
    /// Thresholds are divided by this factor (`≥ 1`); a safety margin
    /// against accumulated floating-point rounding in long chains.
    /// Default `1.0` (the analytical bound as-is).
    pub safety: f64,
}

impl StaticBoundConfig {
    /// Analysis at tolerance `T` with no extra safety margin.
    pub fn new(tolerance: f64) -> Self {
        StaticBoundConfig {
            tolerance,
            safety: 1.0,
        }
    }
}

/// Why a static bound could not be produced.
#[derive(Debug, Clone, PartialEq)]
pub enum StaticBoundError {
    /// The kernel's `run` carries no provenance instrumentation (the
    /// recorded graph has no output or branch sinks), so a backward pass
    /// would certify `∞` everywhere — unsound, therefore refused.
    NotInstrumented,
    /// The supplied tolerance is not a positive finite number.
    BadTolerance(f64),
}

impl std::fmt::Display for StaticBoundError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StaticBoundError::NotInstrumented => write!(
                f,
                "kernel is not provenance-instrumented: the recorded \
                 dependence graph has no output or branch sinks \
                 (instrumented kernels: jacobi, gemm, cg (matrix-free), \
                 lu, fft, stencil, matvec, spmv)"
            ),
            StaticBoundError::BadTolerance(t) => {
                write!(f, "tolerance must be positive and finite, got {t}")
            }
        }
    }
}

impl std::error::Error for StaticBoundError {}

/// Run the full static analysis on a recorded dependence graph.
///
/// # Errors
/// [`StaticBoundError::NotInstrumented`] if the graph has no sinks,
/// [`StaticBoundError::BadTolerance`] for a non-positive tolerance.
pub fn static_bound(ddg: &Ddg, cfg: &StaticBoundConfig) -> Result<StaticBound, StaticBoundError> {
    if !(cfg.tolerance > 0.0 && cfg.tolerance.is_finite()) {
        return Err(StaticBoundError::BadTolerance(cfg.tolerance));
    }
    if !ddg.is_instrumented() {
        return Err(StaticBoundError::NotInstrumented);
    }
    Ok(backward_pass(ddg, cfg.tolerance, cfg.safety.max(1.0)))
}
