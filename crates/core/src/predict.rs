//! Boundary-based outcome prediction.
//!
//! The decisive property of the boundary method: for **any** `(site, bit)`
//! experiment, the corrupted value `flip(v, bit)` is computable from the
//! golden trace alone, so once the boundary is built, predicting the whole
//! `sites × bits` space needs zero further kernel executions.
//!
//! Prediction rules (paper §3.3, §4.4, plus the crash-aware refinement
//! documented in DESIGN.md):
//!
//! * the flip yields a non-finite value ⇒ **Crash** predicted (exact,
//!   since this is precisely the NaN-exception trigger — only available
//!   in `crash_aware` mode, the default);
//! * injected error `ε ≤ Δe_site` ⇒ **Masked** predicted;
//! * otherwise ⇒ **assumed SDC** (the conservative default the paper
//!   uses for unknown cases — the source of SDC-ratio overestimation at
//!   low sampling rates).

use crate::boundary::Boundary;
use crate::sample::SampleSet;
use ftb_inject::{ExhaustiveResult, Outcome};
use ftb_trace::bits::injected_error;
use ftb_trace::GoldenRun;
use serde::{Deserialize, Serialize};

/// A predicted experiment outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PredictedOutcome {
    /// Below the boundary: predicted masked.
    Masked,
    /// Above the boundary: assumed SDC (could in truth be SDC, crash, or
    /// a non-monotonically masked case).
    AssumedSdc,
    /// The flip itself produces a non-finite value: predicted crash.
    Crash,
}

impl PredictedOutcome {
    /// Whether this prediction counts as a positive "masked" call.
    #[inline]
    pub fn is_masked(self) -> bool {
        matches!(self, PredictedOutcome::Masked)
    }
}

/// Predicts experiment outcomes from a boundary and the golden trace.
#[derive(Debug, Clone, Copy)]
pub struct Predictor<'a> {
    golden: &'a GoldenRun,
    boundary: &'a Boundary,
    crash_aware: bool,
}

impl<'a> Predictor<'a> {
    /// A crash-aware predictor (the default configuration).
    pub fn new(golden: &'a GoldenRun, boundary: &'a Boundary) -> Self {
        assert_eq!(
            golden.n_sites(),
            boundary.n_sites(),
            "boundary does not match the golden run"
        );
        Predictor {
            golden,
            boundary,
            crash_aware: true,
        }
    }

    /// Disable crash prediction: non-finite flips fall through to the
    /// boundary test like any other error (the paper's plain formulation;
    /// kept as an ablation).
    pub fn without_crash_prediction(mut self) -> Self {
        self.crash_aware = false;
        self
    }

    /// Number of sites.
    pub fn n_sites(&self) -> usize {
        self.golden.n_sites()
    }

    /// Bits per site.
    pub fn bits(&self) -> u8 {
        self.golden.precision.bits()
    }

    /// Predict one experiment.
    pub fn predict(&self, site: usize, bit: u8) -> PredictedOutcome {
        let v = self.golden.value(site);
        let prec = self.golden.precision;
        if self.crash_aware && !prec.flip(prec.quantize(v), bit).is_finite() {
            return PredictedOutcome::Crash;
        }
        let eps = injected_error(prec, v, bit);
        if self.boundary.predicts_masked(site, eps) {
            PredictedOutcome::Masked
        } else {
            PredictedOutcome::AssumedSdc
        }
    }

    /// Predicted SDC ratio of one site: the fraction of its flips
    /// predicted (assumed) SDC, with known experiment outcomes taking
    /// precedence over prediction when provided — the §4.4 rule ("if all
    /// possible error conditions are injected into a dynamic instruction,
    /// we simply use the correct boundary value").
    pub fn sdc_ratio_at(&self, site: usize, known: Option<&SampleSet>) -> f64 {
        let bits = self.bits();
        let mut sdc = 0u32;
        for bit in 0..bits {
            let is_sdc = match known.and_then(|k| k.get(site, bit)) {
                Some(e) => e.outcome.is_sdc(),
                None => self.predict(site, bit) == PredictedOutcome::AssumedSdc,
            };
            sdc += u32::from(is_sdc);
        }
        f64::from(sdc) / f64::from(bits)
    }

    /// Predicted per-site SDC ratios over the whole program.
    pub fn sdc_ratio_per_site(&self, known: Option<&SampleSet>) -> Vec<f64> {
        (0..self.n_sites())
            .map(|s| self.sdc_ratio_at(s, known))
            .collect()
    }

    /// Predicted overall SDC ratio (mean of the per-site ratios, which
    /// equals predicted-SDC count over the whole experiment space).
    pub fn overall_sdc_ratio(&self, known: Option<&SampleSet>) -> f64 {
        let per = self.sdc_ratio_per_site(known);
        if per.is_empty() {
            return 0.0;
        }
        per.iter().sum::<f64>() / per.len() as f64
    }

    /// Predict the entire space against an exhaustive ground truth,
    /// returning `(true_outcome, predicted)` pairs — the raw stream the
    /// metrics are computed from.
    pub fn against_truth<'e>(
        &'e self,
        truth: &'e ExhaustiveResult,
    ) -> impl Iterator<Item = (usize, u8, Outcome, PredictedOutcome)> + 'e {
        truth
            .iter()
            .map(move |(site, bit, o)| (site, bit, o, self.predict(site, bit)))
    }
}

/// Extract the **crash** experiments of an exhaustive campaign as a known
/// set. In the §4.1 golden-boundary evaluation, crashes are *detected*
/// outcomes of the campaign the boundary was built from (they are not
/// silent), so SDC-ratio prediction may legitimately treat them as known;
/// the boundary abstraction models only the masked/SDC divide. The
/// remaining ΔSDC then isolates exactly the non-monotonicity error the
/// paper's Figure 3 discusses.
pub fn crash_known_set(golden: &GoldenRun, truth: &ExhaustiveResult) -> SampleSet {
    let mut set = SampleSet::new();
    for (site, bit, o) in truth.iter() {
        if o.is_crash() {
            set.insert(ftb_inject::Experiment {
                site,
                bit,
                injected_err: injected_error(golden.precision, golden.value(site), bit),
                output_err: f64::INFINITY,
                outcome: o,
            });
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boundary::Boundary;
    use ftb_trace::{Precision, StaticId, Tracer};

    fn golden_with_values(vals: &[f64]) -> GoldenRun {
        let mut t = Tracer::golden(Precision::F64);
        for &v in vals {
            t.value(StaticId(0), v);
        }
        t.finish_golden(vals.to_vec())
    }

    #[test]
    fn predicts_masked_below_threshold() {
        let g = golden_with_values(&[1.0, 1.0]);
        let mut b = Boundary::zero(2);
        b.observe(0, 1.0); // site 0 tolerates up to 1.0
        let p = Predictor::new(&g, &b);
        // bit 51 flip of 1.0: error 0.5 ≤ 1.0 -> masked
        assert_eq!(p.predict(0, 51), PredictedOutcome::Masked);
        // sign flip: error 2.0 > 1.0 -> assumed SDC
        assert_eq!(p.predict(0, 63), PredictedOutcome::AssumedSdc);
        // site 1 has no information: everything (finite, nonzero) assumed SDC
        assert_eq!(p.predict(1, 51), PredictedOutcome::AssumedSdc);
    }

    #[test]
    fn crash_aware_flags_nonfinite_flips() {
        let g = golden_with_values(&[1.0]);
        let b = Boundary::zero(1);
        let p = Predictor::new(&g, &b);
        // bit 62 of 1.0 -> +Inf
        assert_eq!(p.predict(0, 62), PredictedOutcome::Crash);
        let p2 = p.without_crash_prediction();
        assert_eq!(p2.predict(0, 62), PredictedOutcome::AssumedSdc);
    }

    #[test]
    fn sdc_ratio_counts_assumed_sdc_only() {
        let g = golden_with_values(&[1.0]);
        let mut b = Boundary::zero(1);
        b.observe(0, f64::MAX); // tolerate everything finite
        let p = Predictor::new(&g, &b);
        // the only non-masked predictions are the non-finite flips (crash)
        let r = p.sdc_ratio_at(0, None);
        assert_eq!(r, 0.0);
        let overall = p.overall_sdc_ratio(None);
        assert_eq!(overall, 0.0);
    }

    #[test]
    fn zero_boundary_assumes_everything_sdc_except_nop_and_crash_flips() {
        let g = golden_with_values(&[1.0]);
        let b = Boundary::zero(1);
        let p = Predictor::new(&g, &b);
        let r = p.sdc_ratio_at(0, None);
        // 64 flips of 1.0: one produces +Inf (bit 62, predicted crash);
        // none are error-free; the rest are assumed SDC
        assert!((r - 63.0 / 64.0).abs() < 1e-12, "ratio {r}");
    }

    #[test]
    fn known_outcomes_override_prediction() {
        use ftb_inject::{Experiment, Outcome};
        let g = golden_with_values(&[1.0]);
        let b = Boundary::zero(1); // predicts assumed-SDC everywhere
        let p = Predictor::new(&g, &b);
        let mut known = SampleSet::new();
        for bit in 0..64u8 {
            known.insert(Experiment {
                site: 0,
                bit,
                injected_err: 0.0,
                output_err: 0.0,
                outcome: Outcome::Masked,
            });
        }
        assert_eq!(p.sdc_ratio_at(0, Some(&known)), 0.0);
        assert!(p.sdc_ratio_at(0, None) > 0.9);
    }

    #[test]
    #[should_panic]
    fn mismatched_boundary_rejected() {
        let g = golden_with_values(&[1.0, 2.0]);
        let b = Boundary::zero(5);
        let _ = Predictor::new(&g, &b);
    }
}
