//! The outward-rounded interval domain.
//!
//! An [`Interval`] abstracts a set of real values as `[lo, hi]` plus a
//! NaN-reachability flag. Every arithmetic operation rounds its result
//! endpoints *outward* (one ulp down on `lo`, one ulp up on `hi`), so the
//! soundness invariant — every concrete result of the abstracted
//! operation lies inside the abstract result — survives the `f64`
//! rounding of the analysis itself.
//!
//! Overflow reachability is encoded in the endpoints: an endpoint at
//! `±∞` means values beyond the largest finite `f64` are reachable, and
//! [`Interval::overflows`] asks the same question against a kernel's
//! element precision (an interval can be finite in `f64` yet overflow
//! binary32). NaN reachability is a separate flag because NaN is not
//! ordered and cannot live in the endpoints.

use ftb_trace::Precision;
use std::fmt;

/// A closed interval `[lo, hi]` over the extended reals, with NaN
/// reachability tracked out-of-band.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    lo: f64,
    hi: f64,
    nan: bool,
}

/// Round an upper endpoint up by one ulp (identity at `+∞`).
#[inline]
fn up(x: f64) -> f64 {
    if x.is_nan() {
        x
    } else {
        x.next_up()
    }
}

/// Round a lower endpoint down by one ulp (identity at `−∞`).
#[inline]
fn down(x: f64) -> f64 {
    if x.is_nan() {
        x
    } else {
        x.next_down()
    }
}

// `neg`/`add`/`sub`/`mul` shadow the std operator names on purpose: the
// domain's arithmetic rounds outward and tracks NaN reachability, and a
// spelled-out method call keeps that visible at every use site.
#[allow(clippy::should_implement_trait)]
impl Interval {
    /// The degenerate interval `[v, v]` (no rounding: the point is
    /// exactly representable because it *is* an `f64`). A NaN input
    /// yields the NaN-reachable full interval.
    pub fn point(v: f64) -> Self {
        if v.is_nan() {
            return Interval::everything().with_nan();
        }
        Interval {
            lo: v,
            hi: v,
            nan: false,
        }
    }

    /// The interval `[lo, hi]`, endpoints taken as given (callers supply
    /// already-sound endpoints). NaN endpoints yield the NaN-reachable
    /// full interval.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn new(lo: f64, hi: f64) -> Self {
        if lo.is_nan() || hi.is_nan() {
            return Interval::everything().with_nan();
        }
        assert!(lo <= hi, "inverted interval [{lo}, {hi}]");
        Interval { lo, hi, nan: false }
    }

    /// The interval centred on `c` with radius `r ≥ 0`, endpoints rounded
    /// outward. An infinite or NaN radius yields the full interval.
    pub fn centered(c: f64, r: f64) -> Self {
        if !r.is_finite() || c.is_nan() {
            let iv = Interval::everything();
            return if c.is_nan() || r.is_nan() {
                iv.with_nan()
            } else {
                iv
            };
        }
        debug_assert!(r >= 0.0, "negative radius {r}");
        if r == 0.0 {
            return Interval::point(c);
        }
        Interval {
            lo: down(c - r),
            hi: up(c + r),
            nan: false,
        }
    }

    /// The full interval `[−∞, +∞]` (overflow reachable on both sides).
    pub fn everything() -> Self {
        Interval {
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
            nan: false,
        }
    }

    /// This interval with NaN marked reachable.
    pub fn with_nan(mut self) -> Self {
        self.nan = true;
        self
    }

    /// Lower endpoint.
    #[inline]
    pub fn lo(self) -> f64 {
        self.lo
    }

    /// Upper endpoint.
    #[inline]
    pub fn hi(self) -> f64 {
        self.hi
    }

    /// Whether NaN is reachable.
    #[inline]
    pub fn maybe_nan(self) -> bool {
        self.nan
    }

    /// Whether values beyond `precision`'s largest finite magnitude (or
    /// `±∞` itself) are reachable — the overflow-reachability query the
    /// bit classifier refuses to certify through.
    pub fn overflows(self, precision: Precision) -> bool {
        self.nan || self.lo < -precision.max_finite() || self.hi > precision.max_finite()
    }

    /// Whether `v` lies inside the interval (NaN is inside iff NaN is
    /// reachable).
    pub fn contains(self, v: f64) -> bool {
        if v.is_nan() {
            return self.nan;
        }
        self.lo <= v && v <= self.hi
    }

    /// Width `hi − lo` (`+∞` for unbounded intervals, `0` for points).
    pub fn width(self) -> f64 {
        let w = self.hi - self.lo;
        if w.is_nan() {
            // (−∞) − (−∞) etc. cannot occur for valid intervals, but be
            // total anyway
            f64::INFINITY
        } else {
            w
        }
    }

    /// Magnitude envelope `(min |x|, max |x|)` over the interval.
    pub fn abs_bounds(self) -> (f64, f64) {
        let min = if self.lo <= 0.0 && self.hi >= 0.0 {
            0.0
        } else {
            self.lo.abs().min(self.hi.abs())
        };
        (min, self.lo.abs().max(self.hi.abs()))
    }

    /// Whether the interval contains another (NaN reachability must be
    /// contained too).
    pub fn encloses(self, other: Interval) -> bool {
        self.lo <= other.lo && other.hi <= self.hi && (self.nan || !other.nan)
    }

    /// Convex hull (join) of two intervals.
    pub fn hull(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
            nan: self.nan || other.nan,
        }
    }

    /// Interval negation (exact: negation never rounds).
    pub fn neg(self) -> Interval {
        Interval {
            lo: -self.hi,
            hi: -self.lo,
            nan: self.nan,
        }
    }

    /// Outward-rounded interval addition. If one operand reaches `+∞`
    /// and the other `−∞`, the member-wise sum contains `∞ − ∞`: NaN is
    /// marked reachable and the result widens to everything.
    pub fn add(self, other: Interval) -> Interval {
        let opposing = (self.hi == f64::INFINITY && other.lo == f64::NEG_INFINITY)
            || (self.lo == f64::NEG_INFINITY && other.hi == f64::INFINITY);
        let lo = self.lo + other.lo;
        let hi = self.hi + other.hi;
        if opposing || lo.is_nan() || hi.is_nan() {
            return Interval::everything().with_nan();
        }
        Interval {
            lo: down(lo),
            hi: up(hi),
            nan: self.nan || other.nan,
        }
    }

    /// Outward-rounded interval subtraction.
    pub fn sub(self, other: Interval) -> Interval {
        self.add(other.neg())
    }

    /// Outward-rounded interval multiplication (four-products rule).
    /// If one operand contains `0` and the other reaches `±∞`, the
    /// member-wise product contains `0 × ∞`: NaN is marked reachable and
    /// the result widens to everything.
    pub fn mul(self, other: Interval) -> Interval {
        let zero_times_inf = (self.contains(0.0)
            && (other.lo == f64::NEG_INFINITY || other.hi == f64::INFINITY))
            || (other.contains(0.0) && (self.lo == f64::NEG_INFINITY || self.hi == f64::INFINITY));
        if zero_times_inf {
            return Interval::everything().with_nan();
        }
        let products = [
            self.lo * other.lo,
            self.lo * other.hi,
            self.hi * other.lo,
            self.hi * other.hi,
        ];
        if products.iter().any(|p| p.is_nan()) {
            return Interval::everything().with_nan();
        }
        let lo = products.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = products.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Interval {
            lo: down(lo),
            hi: up(hi),
            nan: self.nan || other.nan,
        }
    }

    /// Outward-rounded scaling by a non-negative factor (the forward
    /// pass's amplification step). An infinite factor against a non-point
    /// interval widens to everything.
    pub fn scale(self, k: f64) -> Interval {
        debug_assert!(k >= 0.0 || k.is_nan(), "negative scale {k}");
        self.mul(Interval::point(k).hull(Interval::point(k).neg()))
    }

    /// Outward-rounded widening by radius `r ≥ 0` on both sides.
    pub fn expand(self, r: f64) -> Interval {
        if !r.is_finite() {
            return Interval {
                nan: self.nan || r.is_nan(),
                ..Interval::everything()
            };
        }
        if r == 0.0 {
            return self;
        }
        Interval {
            lo: down(self.lo - r),
            hi: up(self.hi + r),
            nan: self.nan,
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:e}, {:e}]", self.lo, self.hi)?;
        if self.nan {
            write!(f, "∪NaN")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_is_tight_and_contains_itself() {
        let iv = Interval::point(1.5);
        assert_eq!(iv.lo(), 1.5);
        assert_eq!(iv.hi(), 1.5);
        assert_eq!(iv.width(), 0.0);
        assert!(iv.contains(1.5));
        assert!(!iv.contains(1.5 + 1e-9));
        assert!(!iv.maybe_nan());
    }

    #[test]
    fn add_rounds_outward() {
        let a = Interval::point(0.1);
        let b = Interval::point(0.2);
        let s = a.add(b);
        // concrete 0.1 + 0.2 (with its rounding error) must be inside
        assert!(s.contains(0.1 + 0.2));
        assert!(s.lo() < s.hi(), "outward rounding must open the point");
    }

    #[test]
    fn mul_covers_all_sign_corners() {
        let a = Interval::new(-2.0, 3.0);
        let b = Interval::new(-5.0, 7.0);
        let m = a.mul(b);
        for &x in &[-2.0, 0.0, 1.0, 3.0] {
            for &y in &[-5.0, 0.0, 2.0, 7.0] {
                assert!(m.contains(x * y), "{x}·{y} escaped {m}");
            }
        }
    }

    #[test]
    fn soundness_sampled_over_ops() {
        // concrete op results stay inside abstract op results
        let cases = [
            (Interval::new(-1.0, 2.0), Interval::new(0.5, 3.0)),
            (Interval::new(-4.5, -1.25), Interval::new(-2.0, 2.0)),
            (Interval::point(0.0), Interval::new(-1e300, 1e300)),
        ];
        for (a, b) in cases {
            for i in 0..=10 {
                for j in 0..=10 {
                    let x = a.lo() + (a.hi() - a.lo()) * i as f64 / 10.0;
                    let y = b.lo() + (b.hi() - b.lo()) * j as f64 / 10.0;
                    assert!(a.add(b).contains(x + y));
                    assert!(a.sub(b).contains(x - y));
                    assert!(a.mul(b).contains(x * y));
                    assert!(a.neg().contains(-x));
                }
            }
        }
    }

    #[test]
    fn nan_inputs_poison() {
        let iv = Interval::point(f64::NAN);
        assert!(iv.maybe_nan());
        assert!(iv.contains(f64::NAN));
        assert!(iv.contains(1e308));
        let sum = Interval::point(1.0).add(iv);
        assert!(sum.maybe_nan());
    }

    #[test]
    fn inf_minus_inf_marks_nan() {
        let a = Interval::everything();
        let s = a.add(a.neg());
        assert!(s.maybe_nan());
    }

    #[test]
    fn zero_times_everything_marks_nan() {
        let m = Interval::point(0.0).mul(Interval::everything());
        assert!(m.maybe_nan());
    }

    #[test]
    fn overflow_reachability_is_precision_relative() {
        let big = Interval::point(1e39); // beyond f32::MAX, fine for f64
        assert!(big.overflows(Precision::F32));
        assert!(!big.overflows(Precision::F64));
        assert!(Interval::everything().overflows(Precision::F64));
        assert!(!Interval::point(1.0).overflows(Precision::F32));
    }

    #[test]
    fn abs_bounds_handles_straddling_zero() {
        assert_eq!(Interval::new(-3.0, 2.0).abs_bounds(), (0.0, 3.0));
        assert_eq!(Interval::new(1.0, 4.0).abs_bounds(), (1.0, 4.0));
        assert_eq!(Interval::new(-4.0, -1.0).abs_bounds(), (1.0, 4.0));
        assert_eq!(Interval::point(0.0).abs_bounds(), (0.0, 0.0));
    }

    #[test]
    fn hull_and_encloses() {
        let a = Interval::new(0.0, 1.0);
        let b = Interval::new(2.0, 3.0);
        let h = a.hull(b);
        assert!(h.encloses(a) && h.encloses(b));
        assert!(h.contains(1.5));
        assert!(!a.encloses(h));
        assert!(!a.encloses(a.with_nan()));
        assert!(a.with_nan().encloses(a));
    }

    #[test]
    fn expand_widens_monotonically() {
        let a = Interval::point(1.0);
        let w1 = a.expand(0.1);
        let w2 = a.expand(0.5);
        assert!(w2.encloses(w1));
        assert!(w1.encloses(a));
        assert!(w1.width() >= 0.2);
        assert!(a.expand(f64::INFINITY).encloses(Interval::everything()));
    }

    #[test]
    fn centered_contains_ball() {
        let iv = Interval::centered(3.0, 0.25);
        assert!(iv.contains(2.75) && iv.contains(3.25));
        assert!(Interval::centered(1.0, f64::INFINITY).encloses(Interval::everything()));
        assert_eq!(Interval::centered(2.0, 0.0), Interval::point(2.0));
    }

    #[test]
    #[should_panic]
    fn inverted_interval_panics() {
        let _ = Interval::new(2.0, 1.0);
    }
}
