//! The forward abstract-interpretation pass over the provenance DDG.
//!
//! Where the backward pass (`staticbound`) pushes *error budgets* from
//! the sinks toward every site, this pass pushes *value envelopes* from
//! the sources toward every site: each dynamic instruction `i` gets a
//! sound interval on the value it can hold when the kernel's source
//! values are perturbed within a configurable relative radius
//! ([`ForwardConfig::widen`]).
//!
//! The transfer function reuses the DDG's secant machinery: an edge
//! `def → use` with amplification `amp` and curvature cap `cap`
//! guarantees `|Δuse| ≤ amp · |Δdef|` for `|Δdef| ≤ cap`, so deviation
//! radii fold forward as `r_use = Σ_edges amp · r_def` — with the sum
//! rounded *upward* at every step and widened to `+∞` the moment any
//! def's radius escapes its cap (the certificate does not extend there).
//! The site's interval is then the outward-rounded ball of that radius
//! around its golden value.
//!
//! At `widen = 0` every radius is zero and each interval collapses to
//! the golden point — the forward analysis degenerates to the concrete
//! golden run, which is exactly the validation hook the soundness
//! harness exercises ([`ForwardIntervals::contains_golden`]).

use super::interval::Interval;
use ftb_trace::bits::{biased_exponent, min_magnitude, sup_magnitude};
use ftb_trace::{Ddg, GoldenRun, Precision};
use std::fmt;

/// Configuration of the forward pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForwardConfig {
    /// Relative widening of source sites: a site with no recorded
    /// in-edges is seeded with the interval `golden ± widen·|golden|`.
    /// `0` (the default) analyses the concrete golden run itself.
    pub widen: f64,
}

impl Default for ForwardConfig {
    fn default() -> Self {
        ForwardConfig { widen: 0.0 }
    }
}

/// Why the forward pass refused to run.
#[derive(Debug, Clone, PartialEq)]
pub enum AbsIntError {
    /// The DDG and golden run disagree on the number of dynamic
    /// instructions.
    SiteMismatch {
        /// Sites in the DDG.
        ddg: usize,
        /// Sites in the golden run.
        golden: usize,
    },
    /// `widen` is negative or non-finite.
    BadWiden(f64),
}

impl fmt::Display for AbsIntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbsIntError::SiteMismatch { ddg, golden } => {
                write!(f, "DDG spans {ddg} sites but the golden run has {golden}")
            }
            AbsIntError::BadWiden(w) => {
                write!(f, "widening radius must be finite and ≥ 0, got {w}")
            }
        }
    }
}

impl std::error::Error for AbsIntError {}

/// Per-site value envelopes produced by [`forward_pass`].
#[derive(Debug, Clone)]
pub struct ForwardIntervals {
    /// Element precision of the analysed kernel.
    pub precision: Precision,
    /// Sound per-site value interval.
    pub intervals: Vec<Interval>,
    /// Sound per-site deviation radius from the golden value
    /// (`+∞` where a curvature cap was exceeded — no finite certificate).
    pub radii: Vec<f64>,
    /// Number of source sites (no recorded in-edges).
    pub n_sources: usize,
    /// Number of sites whose radius escaped to `+∞`.
    pub n_unbounded: usize,
}

/// Round up by one ulp; NaN (e.g. `∞ · 0` in degenerate-amplification
/// corners) conservatively becomes `+∞`.
#[inline]
fn up(x: f64) -> f64 {
    if x.is_nan() {
        f64::INFINITY
    } else {
        x.next_up()
    }
}

/// Run the forward interval pass. Works on any recorded DDG, including
/// sink-less ones — unlike the backward pass, value envelopes need no
/// anchor to the classifier.
pub fn forward_pass(
    ddg: &Ddg,
    golden: &GoldenRun,
    cfg: &ForwardConfig,
) -> Result<ForwardIntervals, AbsIntError> {
    if ddg.n_sites != golden.n_sites() {
        return Err(AbsIntError::SiteMismatch {
            ddg: ddg.n_sites,
            golden: golden.n_sites(),
        });
    }
    if !(cfg.widen >= 0.0 && cfg.widen.is_finite()) {
        return Err(AbsIntError::BadWiden(cfg.widen));
    }
    let n = ddg.n_sites;

    // per-site curvature cap: the tightest cap registered for the site
    let mut cap = vec![f64::INFINITY; n];
    for &(site, c) in &ddg.caps {
        let s = &mut cap[site as usize];
        *s = s.min(c);
    }

    let mut has_inedge = vec![false; n];
    for &u in &ddg.uses {
        has_inedge[u as usize] = true;
    }

    // seed sources, then fold edges forward. `uses` is non-decreasing and
    // every def strictly precedes its use, so a single sweep sees each
    // def's radius in its final state.
    let mut radius = vec![0.0f64; n];
    let mut n_sources = 0usize;
    for (i, r) in radius.iter_mut().enumerate() {
        if !has_inedge[i] {
            n_sources += 1;
            if cfg.widen > 0.0 {
                *r = up(cfg.widen * golden.value(i).abs());
            }
        }
    }
    for ((&d, &u), &amp) in ddg.defs.iter().zip(&ddg.uses).zip(&ddg.amps) {
        let (d, u) = (d as usize, u as usize);
        let r = radius[d];
        // |Δdef| = 0 induces no deviation regardless of amplification
        // (the secant bound amp·|δ| at δ = 0), so degenerate ∞
        // amplifications stay harmless on the concrete run
        if r == 0.0 {
            continue;
        }
        if r > cap[d] {
            // perturbation outside the secant certificate: unbounded
            radius[u] = f64::INFINITY;
        } else {
            radius[u] = up(radius[u] + up(amp * r));
        }
    }

    let mut n_unbounded = 0;
    let intervals: Vec<Interval> = (0..n)
        .map(|i| {
            if !radius[i].is_finite() {
                n_unbounded += 1;
            }
            Interval::centered(golden.value(i), radius[i])
        })
        .collect();

    Ok(ForwardIntervals {
        precision: golden.precision,
        intervals,
        radii: radius,
        n_sources,
        n_unbounded,
    })
}

impl ForwardIntervals {
    /// Number of sites covered.
    pub fn n_sites(&self) -> usize {
        self.intervals.len()
    }

    /// The validation hook: does every concrete golden value lie inside
    /// its forward interval? (Must hold for any widening — the golden
    /// run is the zero-perturbation member of the abstracted family.)
    pub fn contains_golden(&self, golden: &GoldenRun) -> bool {
        self.intervals.len() == golden.n_sites()
            && (0..self.intervals.len()).all(|i| self.intervals[i].contains(golden.value(i)))
    }

    /// Sound biased-exponent range `(eb_lo, eb_hi)` of site `i` in the
    /// kernel's element precision, or `None` when the envelope reaches
    /// overflow/NaN territory (nothing exponent-level can be certified
    /// there).
    ///
    /// `eb_lo = 0` means zero/subnormal values are reachable.
    pub fn exp_range(&self, site: usize) -> Option<(u32, u32)> {
        let iv = self.intervals[site];
        if iv.maybe_nan() || iv.overflows(self.precision) {
            return None;
        }
        let (minabs, maxabs) = iv.abs_bounds();
        let prec = self.precision;
        let mut eb_hi = biased_exponent(prec, maxabs);
        // quantisation rounds to nearest: nudge outward if the band
        // boundary was crossed
        if sup_magnitude(prec, eb_hi) < maxabs {
            eb_hi += 1;
        }
        let mut eb_lo = biased_exponent(prec, minabs);
        if eb_lo > 0 && min_magnitude(prec, eb_lo) > minabs {
            eb_lo -= 1;
        }
        debug_assert!(eb_lo <= eb_hi);
        Some((eb_lo, eb_hi))
    }

    /// Largest interval width over all sites (`+∞` if any site is
    /// unbounded) — the scalar the monotonicity harness tracks.
    pub fn max_width(&self) -> f64 {
        self.intervals
            .iter()
            .map(|iv| iv.width())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftb_kernels::{Kernel, MatvecConfig, MatvecKernel};

    fn matvec() -> (GoldenRun, Ddg) {
        let k = MatvecKernel::new(MatvecConfig {
            n: 4,
            ..MatvecConfig::small()
        });
        k.golden_with_ddg()
    }

    #[test]
    fn zero_widening_gives_point_intervals() {
        let (golden, ddg) = matvec();
        let fw = forward_pass(&ddg, &golden, &ForwardConfig::default()).unwrap();
        assert_eq!(fw.n_sites(), golden.n_sites());
        assert!(fw.contains_golden(&golden));
        assert_eq!(fw.n_unbounded, 0);
        assert!(fw.radii.iter().all(|&r| r == 0.0));
        assert_eq!(fw.max_width(), 0.0);
        assert!(fw.n_sources > 0, "matvec has source sites");
    }

    #[test]
    fn widening_is_monotone_in_width() {
        let (golden, ddg) = matvec();
        let widths: Vec<f64> = [0.0, 1e-9, 1e-6, 1e-3]
            .iter()
            .map(|&w| {
                let fw = forward_pass(&ddg, &golden, &ForwardConfig { widen: w }).unwrap();
                assert!(fw.contains_golden(&golden), "widen={w}");
                fw.max_width()
            })
            .collect();
        for pair in widths.windows(2) {
            assert!(pair[0] <= pair[1], "widths not monotone: {widths:?}");
        }
        assert!(widths[3] > 0.0);
    }

    #[test]
    fn widened_intervals_enclose_narrower_ones() {
        let (golden, ddg) = matvec();
        let narrow = forward_pass(&ddg, &golden, &ForwardConfig { widen: 1e-8 }).unwrap();
        let wide = forward_pass(&ddg, &golden, &ForwardConfig { widen: 1e-4 }).unwrap();
        for i in 0..narrow.n_sites() {
            assert!(
                wide.intervals[i].encloses(narrow.intervals[i]),
                "site {i}: {} does not enclose {}",
                wide.intervals[i],
                narrow.intervals[i]
            );
        }
    }

    #[test]
    fn forward_deviation_bound_is_sound_on_a_linear_chain() {
        // hand-built DDG: x0 (source) → x1 = 3·x0 → x2 = x1 + x0.
        // perturbing x0 by δ changes x1 by 3δ and x2 by 4δ; the radii
        // must dominate those deviations at the configured widening.
        use ftb_trace::{Precision, StaticId, Tracer};
        let x0 = 2.0;
        let mut t = Tracer::golden(Precision::F64).with_ddg();
        t.value(StaticId(0), x0); // site 0
        t.dep(0, ftb_trace::OpKind::Scale(3.0));
        t.value(StaticId(1), 3.0 * x0); // site 1
        t.dep(0, ftb_trace::OpKind::Linear);
        t.dep(1, ftb_trace::OpKind::Linear);
        t.value(StaticId(2), 3.0 * x0 + x0); // site 2
        t.out_dep(2, 1.0);
        let (golden, ddg) = t.finish_golden_with_ddg(vec![3.0 * x0 + x0]);

        let w = 1e-3;
        let fw = forward_pass(&ddg, &golden, &ForwardConfig { widen: w }).unwrap();
        let delta = w * x0; // the largest admitted source perturbation
        assert!(fw.radii[1] >= 3.0 * delta);
        assert!(fw.radii[2] >= 4.0 * delta);
        // and the intervals contain the concretely perturbed values
        assert!(fw.intervals[1].contains(3.0 * (x0 + delta)));
        assert!(fw.intervals[2].contains(4.0 * (x0 - delta)));
    }

    #[test]
    fn cap_escape_goes_unbounded_not_wrong() {
        // Square(x) caps the def's perturbation at |x|; widen beyond it
        use ftb_trace::{Precision, StaticId, Tracer};
        let x0 = 0.5;
        let mut t = Tracer::golden(Precision::F64).with_ddg();
        t.value(StaticId(0), x0); // site 0
        t.dep(0, ftb_trace::OpKind::Square(x0));
        t.value(StaticId(1), x0 * x0); // site 1
        t.out_dep(1, 1.0);
        let (golden, ddg) = t.finish_golden_with_ddg(vec![x0 * x0]);

        // widen 2.0: source radius 1.0 > cap 0.5 ⇒ downstream unbounded
        let fw = forward_pass(&ddg, &golden, &ForwardConfig { widen: 2.0 }).unwrap();
        assert_eq!(fw.n_unbounded, 1);
        assert!(fw.radii[1].is_infinite());
        assert!(fw.contains_golden(&golden), "still sound, just not tight");
        // inside the cap the bound stays finite
        let fw2 = forward_pass(&ddg, &golden, &ForwardConfig { widen: 0.5 }).unwrap();
        assert_eq!(fw2.n_unbounded, 0);
    }

    #[test]
    fn exp_range_brackets_the_golden_exponent() {
        let (golden, ddg) = matvec();
        let fw = forward_pass(&ddg, &golden, &ForwardConfig { widen: 1e-6 }).unwrap();
        for site in 0..fw.n_sites() {
            let (lo, hi) = fw.exp_range(site).expect("finite envelope");
            let eb = biased_exponent(golden.precision, golden.value(site));
            assert!(lo <= eb && eb <= hi, "site {site}: {eb} ∉ [{lo}, {hi}]");
        }
    }

    #[test]
    fn mismatched_golden_is_rejected() {
        let (golden, _) = matvec();
        let ddg = Ddg {
            n_sites: golden.n_sites() + 1,
            ..Ddg::default()
        };
        match forward_pass(&ddg, &golden, &ForwardConfig::default()) {
            Err(AbsIntError::SiteMismatch { .. }) => {}
            other => panic!("expected SiteMismatch, got {other:?}"),
        }
    }

    #[test]
    fn bad_widen_is_rejected() {
        let (golden, ddg) = matvec();
        for w in [-1.0, f64::NAN, f64::INFINITY] {
            match forward_pass(&ddg, &golden, &ForwardConfig { widen: w }) {
                Err(AbsIntError::BadWiden(_)) => {}
                other => panic!("widen={w}: expected BadWiden, got {other:?}"),
            }
        }
    }
}
