//! Forward interval abstract interpretation over the provenance DDG.
//!
//! The static analyzer so far runs *backward*: `staticbound` pushes the
//! classifier's error budget from the sinks toward every site, producing
//! per-site tolerable-error thresholds `Δe_i^static`. This module adds
//! the *forward* direction — sound per-site value envelopes — and the
//! artifact the two directions buy together: **bit-level vulnerability
//! maps**.
//!
//! Pipeline:
//!
//! 1. [`interval`] — the outward-rounded interval domain (`[lo, hi]`
//!    endpoints plus NaN reachability; overflow reachability is asked
//!    per element precision);
//! 2. [`forward`] — [`forward_pass`] folds deviation radii through the
//!    DDG's secant edges, seeding source sites at
//!    `golden ± widen·|golden|`, and reports each site's interval and
//!    biased-exponent range;
//! 3. [`mask`] — [`safe_bit_masks`] crosses the exponent ranges with a
//!    boundary (static or inferred) and classifies every single-bit flip
//!    as `CertifiedMasked`, `CrashLikely`, or `Unknown`.
//!
//! The masks convert the zero-injection static artifact into campaign
//! work savings: exhaustive and adaptive campaigns skip certified bits
//! (`--bit-prune`), and `ftb analyze bits` renders the map plus its
//! conservatism scorecard against exhaustive ground truth.

pub mod forward;
pub mod interval;
pub mod mask;

pub use forward::{forward_pass, AbsIntError, ForwardConfig, ForwardIntervals};
pub use interval::Interval;
pub use mask::{safe_bit_masks, BitClass, BitMasks, MaskSource, SiteMask};
