//! Boundary → safe-bit-mask conversion: the bit-level vulnerability map.
//!
//! The single-bit-flip fault model makes most of the `sites × bits`
//! campaign statically decidable: flipping mantissa bit `b` of a value
//! with biased exponent `eb` injects an error of exactly `2^b` ulps, so
//! once the forward pass bounds a site's exponent range and the boundary
//! supplies its tolerable error `Δe_i`, each bit classifies as
//!
//! * [`BitClass::CertifiedMasked`] — the worst-case injected error of
//!   that flip, over **every** exponent in the site's range, is `≤ Δe_i`;
//!   the experiment is Masked by construction and needs no injection;
//! * [`BitClass::CrashLikely`] — an exponent-bit flip that provably lands
//!   in the all-ones exponent (Inf/NaN) for every exponent in the range:
//!   the NaN-exception crash trigger;
//! * [`BitClass::Unknown`] — everything else; injection budget belongs
//!   here.
//!
//! Conservatism contract: a `CertifiedMasked` call is only as sound as
//! the boundary it came from. Thresholds from the static analyzer
//! (`staticbound`) are analytical certificates, so certification from
//! [`MaskSource::Static`] inherits their zero-injection soundness; an
//! inferred boundary is empirical, and masks derived from it
//! ([`MaskSource::Inferred`]) carry the same §3.6 uncertainty as the
//! boundary itself. The source is recorded in the mask set so campaign
//! ledgers and reports can state what the pruning relied on.

use super::forward::ForwardIntervals;
use crate::boundary::Boundary;
use ftb_trace::bits::{flip_always_nonfinite, flip_error_sup};
use serde::{Deserialize, Serialize};

/// Classification of one `(site, bit)` flip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BitClass {
    /// Provably Masked: worst-case injected error within the boundary.
    CertifiedMasked,
    /// Provably lands non-finite: the NaN-exception crash trigger.
    CrashLikely,
    /// Statically undecided; needs injection.
    Unknown,
}

/// Which boundary the certification leaned on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MaskSource {
    /// Analytical thresholds from the backward pass (zero injections,
    /// sound by construction).
    Static,
    /// Empirically inferred boundary (Algorithm 1 / adaptive): masks are
    /// predictions with the boundary's own uncertainty.
    Inferred,
}

/// Per-site bit masks (LSB = bit 0, matching the flip indexing).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteMask {
    /// Bits classified [`BitClass::CertifiedMasked`].
    pub certified: u64,
    /// Bits classified [`BitClass::CrashLikely`].
    pub crash_likely: u64,
}

/// The full per-site vulnerability map of one analysed kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BitMasks {
    /// Bits per site (32 or 64).
    pub bits: u8,
    /// Which boundary certified the masks.
    pub source: MaskSource,
    /// One mask pair per dynamic instruction.
    pub sites: Vec<SiteMask>,
}

/// Build the per-site safe-bit masks from forward value envelopes and a
/// boundary. `source` documents (and is bound into ledgers with) where
/// the thresholds came from; it does not change the arithmetic.
///
/// # Panics
/// Panics if the envelope and boundary disagree on the site count.
pub fn safe_bit_masks(fw: &ForwardIntervals, boundary: &Boundary, source: MaskSource) -> BitMasks {
    assert_eq!(
        fw.n_sites(),
        boundary.n_sites(),
        "envelope covers {} sites but boundary covers {}",
        fw.n_sites(),
        boundary.n_sites()
    );
    let prec = fw.precision;
    let bits = prec.bits();
    let mant = prec.mantissa_bits();
    let sign = prec.sign_bit();
    // beyond this many exponent bands, stop sweeping exponent-bit flips
    // per band and leave them Unknown (mantissa/sign rows are monotone in
    // eb and never need the sweep)
    const MAX_BAND_SWEEP: u32 = 256;

    let sites = (0..fw.n_sites())
        .map(|site| {
            let Some((eb_lo, eb_hi)) = fw.exp_range(site) else {
                // overflow/NaN reachable: certify nothing
                return SiteMask::default();
            };
            let t = boundary.threshold(site);
            let mut mask = SiteMask::default();
            for bit in 0..bits {
                if bit < mant || bit == sign {
                    // worst case is monotone in the exponent band
                    if flip_error_sup(prec, eb_hi, bit) <= t {
                        mask.certified |= 1 << bit;
                    }
                    continue;
                }
                // exponent bit: sweep the band range
                if flip_always_nonfinite(prec, eb_lo, bit) && eb_lo == eb_hi {
                    mask.crash_likely |= 1 << bit;
                    continue;
                }
                if eb_hi - eb_lo <= MAX_BAND_SWEEP {
                    let worst = (eb_lo..=eb_hi)
                        .map(|eb| flip_error_sup(prec, eb, bit))
                        .fold(0.0, f64::max);
                    if worst <= t {
                        mask.certified |= 1 << bit;
                    }
                }
            }
            mask
        })
        .collect();

    BitMasks {
        bits,
        source,
        sites,
    }
}

impl BitMasks {
    /// Number of sites covered.
    pub fn n_sites(&self) -> usize {
        self.sites.len()
    }

    /// Classify one `(site, bit)` flip.
    ///
    /// # Panics
    /// Panics if `bit ≥ self.bits`.
    pub fn class(&self, site: usize, bit: u8) -> BitClass {
        assert!(bit < self.bits, "bit {bit} out of range");
        let m = self.sites[site];
        if m.certified >> bit & 1 == 1 {
            BitClass::CertifiedMasked
        } else if m.crash_likely >> bit & 1 == 1 {
            BitClass::CrashLikely
        } else {
            BitClass::Unknown
        }
    }

    /// The per-site certified masks as plain words — the shape the
    /// injection layer's pruned plans consume.
    pub fn certified_masks(&self) -> Vec<u64> {
        self.sites.iter().map(|m| m.certified).collect()
    }

    /// Total certified bits over all sites.
    pub fn certified_total(&self) -> u64 {
        self.sites
            .iter()
            .map(|m| u64::from(m.certified.count_ones()))
            .sum()
    }

    /// Total crash-likely bits over all sites.
    pub fn crash_likely_total(&self) -> u64 {
        self.sites
            .iter()
            .map(|m| u64::from(m.crash_likely.count_ones()))
            .sum()
    }

    /// Size of the full fault space, `sites × bits`.
    pub fn total_bits(&self) -> u64 {
        self.sites.len() as u64 * u64::from(self.bits)
    }

    /// Fraction of a site's flips that are certified safe.
    pub fn safe_fraction(&self, site: usize) -> f64 {
        f64::from(self.sites[site].certified.count_ones()) / f64::from(self.bits)
    }

    /// The site's crash-likely exponent band as an inclusive bit range,
    /// or `None` if no bit is crash-likely.
    pub fn crash_band(&self, site: usize) -> Option<(u8, u8)> {
        let m = self.sites[site].crash_likely;
        if m == 0 {
            return None;
        }
        Some((m.trailing_zeros() as u8, 63 - m.leading_zeros() as u8))
    }

    /// Campaign-work reduction factor an exhaustive pruned campaign
    /// achieves: `total / (total − certified)` (`∞` if everything is
    /// certified).
    pub fn reduction_factor(&self) -> f64 {
        let total = self.total_bits();
        let remaining = total - self.certified_total();
        if remaining == 0 {
            f64::INFINITY
        } else {
            total as f64 / remaining as f64
        }
    }

    /// FNV-1a digest over the certified masks (plus geometry and
    /// source) — the fingerprint campaign ledgers bind to, so a resumed
    /// pruned campaign provably pruned the same bits.
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |word: u64| {
            for byte in word.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(u64::from(self.bits));
        eat(match self.source {
            MaskSource::Static => 0,
            MaskSource::Inferred => 1,
        });
        eat(self.sites.len() as u64);
        for m in &self.sites {
            eat(m.certified);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::absint::forward::{forward_pass, ForwardConfig};
    use crate::boundary::Boundary;
    use ftb_trace::bits::injected_error;
    use ftb_trace::{GoldenRun, Precision, StaticId, Tracer};

    fn point_envelope(values: &[f64], prec: Precision) -> (ForwardIntervals, GoldenRun) {
        let mut t = Tracer::golden(prec).with_ddg();
        for &v in values {
            t.value(StaticId(0), v);
        }
        t.out_dep(values.len() - 1, 1.0);
        let (golden, ddg) = t.finish_golden_with_ddg(values.to_vec());
        let fw = forward_pass(&ddg, &golden, &ForwardConfig::default()).unwrap();
        (fw, golden)
    }

    #[test]
    fn certified_bits_really_are_below_the_threshold() {
        let values = [1.0, -0.375, 1e-8, 3.5e4, 0.0];
        let (fw, golden) = point_envelope(&values, Precision::F64);
        let thresholds = vec![1e-6; values.len()];
        let b = Boundary::from_thresholds(thresholds);
        let masks = safe_bit_masks(&fw, &b, MaskSource::Static);
        assert!(masks.certified_total() > 0, "nothing certified at 1e-6");
        for site in 0..values.len() {
            for bit in 0..64u8 {
                if masks.class(site, bit) == BitClass::CertifiedMasked {
                    let e = injected_error(golden.precision, golden.value(site), bit);
                    assert!(
                        e <= b.threshold(site),
                        "site {site} bit {bit}: certified but exact error {e:e}"
                    );
                }
            }
        }
    }

    #[test]
    fn crash_likely_bits_really_flip_nonfinite() {
        let values = [1.0, 2.0, -0.5];
        let (fw, golden) = point_envelope(&values, Precision::F64);
        let b = Boundary::zero(values.len());
        let masks = safe_bit_masks(&fw, &b, MaskSource::Static);
        let mut n_crash = 0;
        for site in 0..values.len() {
            for bit in 0..64u8 {
                if masks.class(site, bit) == BitClass::CrashLikely {
                    n_crash += 1;
                    let prec = golden.precision;
                    let flipped = prec.flip(prec.quantize(golden.value(site)), bit);
                    assert!(!flipped.is_finite(), "site {site} bit {bit}");
                }
            }
        }
        // 1.0 (biased exponent 0b01111111111) is one flip from all-ones
        assert!(n_crash >= 1, "found {n_crash} crash-likely bits");
    }

    #[test]
    fn zero_boundary_certifies_only_error_free_flips() {
        // Δe = 0 still certifies flips with exactly zero worst-case
        // injected error — there are none in the sup model (even a sign
        // flip of zero has a positive sup over the whole band), so the
        // masks must be empty
        let values = [1.0, 0.0];
        let (fw, _) = point_envelope(&values, Precision::F64);
        let masks = safe_bit_masks(&fw, &Boundary::zero(2), MaskSource::Static);
        assert_eq!(masks.certified_total(), 0);
    }

    #[test]
    fn f32_masks_have_32_bit_geometry() {
        let values = [1.5, -2.25];
        let (fw, _) = point_envelope(&values, Precision::F32);
        let b = Boundary::from_thresholds(vec![1e-3; 2]);
        let masks = safe_bit_masks(&fw, &b, MaskSource::Inferred);
        assert_eq!(masks.bits, 32);
        assert_eq!(masks.source, MaskSource::Inferred);
        assert!(masks.certified_total() > 0);
        assert!(masks.certified_masks().iter().all(|&m| m >> 32 == 0));
        assert_eq!(masks.total_bits(), 64);
    }

    #[test]
    fn accounting_is_consistent() {
        let values = [1.0, 0.5, 2.0];
        let (fw, _) = point_envelope(&values, Precision::F64);
        let b = Boundary::from_thresholds(vec![1e-9, 0.0, 1e3]);
        let masks = safe_bit_masks(&fw, &b, MaskSource::Static);
        let by_class: u64 = (0..3)
            .map(|s| {
                (0..64u8)
                    .filter(|&b| masks.class(s, b) == BitClass::CertifiedMasked)
                    .count() as u64
            })
            .sum();
        assert_eq!(by_class, masks.certified_total());
        let f = masks.safe_fraction(2);
        assert!(f > masks.safe_fraction(1), "1e3 certifies more than 0");
        assert!((0.0..=1.0).contains(&f));
        assert!(masks.reduction_factor() >= 1.0);
        // site 2 at Δe = 1e3 tolerates everything but the near-overflow
        // exponent flips; its crash band is the top exponent bit
        assert!(masks.crash_band(0).is_some());
        assert_eq!(masks.crash_band(0).unwrap(), (62, 62));
    }

    #[test]
    fn digest_tracks_certified_content() {
        let values = [1.0, 0.5];
        let (fw, _) = point_envelope(&values, Precision::F64);
        let a = safe_bit_masks(
            &fw,
            &Boundary::from_thresholds(vec![1e-6; 2]),
            MaskSource::Static,
        );
        let b = safe_bit_masks(
            &fw,
            &Boundary::from_thresholds(vec![1e-6; 2]),
            MaskSource::Static,
        );
        assert_eq!(a.digest(), b.digest(), "deterministic");
        let c = safe_bit_masks(
            &fw,
            &Boundary::from_thresholds(vec![1e-3; 2]),
            MaskSource::Static,
        );
        assert_ne!(a.digest(), c.digest(), "different masks, different digest");
        let d = safe_bit_masks(
            &fw,
            &Boundary::from_thresholds(vec![1e-6; 2]),
            MaskSource::Inferred,
        );
        assert_ne!(a.digest(), d.digest(), "source is part of the binding");
    }

    #[test]
    fn unbounded_envelope_certifies_nothing() {
        // an everything-interval (cap escape) must yield empty masks even
        // against a huge threshold
        use crate::absint::forward::ForwardConfig;
        let mut t = Tracer::golden(Precision::F64).with_ddg();
        t.value(StaticId(0), 0.5);
        t.dep(0, ftb_trace::OpKind::Square(0.5));
        t.value(StaticId(1), 0.25);
        t.out_dep(1, 1.0);
        let (golden, ddg) = t.finish_golden_with_ddg(vec![0.25]);
        let fw = forward_pass(&ddg, &golden, &ForwardConfig { widen: 3.0 }).unwrap();
        assert!(fw.radii[1].is_infinite());
        let masks = safe_bit_masks(
            &fw,
            &Boundary::from_thresholds(vec![f64::MAX; 2]),
            MaskSource::Static,
        );
        assert_eq!(masks.sites[1].certified, 0);
        assert_eq!(masks.sites[1].crash_likely, 0);
    }
}
