//! Sample sets: the fault-injection experiments a boundary is built from.
//!
//! Following the paper's accounting (its Table 4: "1000 samples …
//! represents sampling 0.4% and 0.006% of the total samples" with site
//! counts as the denominator), a *sample* is one `(site, bit)` experiment
//! and the *sampling rate* is `experiments / sites`.

use ftb_inject::{Experiment, Injector};
use ftb_stats::sampling::{sample_without_replacement, seeded_rng};
use ftb_trace::FaultSpec;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A deduplicated set of completed experiments.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
#[serde(from = "Vec<Experiment>", into = "Vec<Experiment>")]
pub struct SampleSet {
    experiments: Vec<Experiment>,
    index: HashMap<(usize, u8), u32>,
}

impl From<Vec<Experiment>> for SampleSet {
    fn from(experiments: Vec<Experiment>) -> Self {
        let mut s = SampleSet::new();
        for e in experiments {
            s.insert(e);
        }
        s
    }
}

impl From<SampleSet> for Vec<Experiment> {
    fn from(s: SampleSet) -> Self {
        s.experiments
    }
}

impl SampleSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert an experiment; returns `false` (and drops it) if the same
    /// `(site, bit)` was already present.
    pub fn insert(&mut self, e: Experiment) -> bool {
        if self.index.contains_key(&e.key()) {
            return false;
        }
        self.index.insert(e.key(), self.experiments.len() as u32);
        self.experiments.push(e);
        true
    }

    /// Whether `(site, bit)` has been run.
    pub fn contains(&self, site: usize, bit: u8) -> bool {
        self.index.contains_key(&(site, bit))
    }

    /// The recorded experiment at `(site, bit)`, if any (O(1)).
    pub fn get(&self, site: usize, bit: u8) -> Option<&Experiment> {
        self.index
            .get(&(site, bit))
            .map(|&i| &self.experiments[i as usize])
    }

    /// All experiments, in insertion order.
    pub fn experiments(&self) -> &[Experiment] {
        &self.experiments
    }

    /// Number of experiments.
    pub fn len(&self) -> usize {
        self.experiments.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.experiments.is_empty()
    }

    /// The paper's sampling rate: experiments per dynamic instruction.
    pub fn rate(&self, n_sites: usize) -> f64 {
        self.experiments.len() as f64 / n_sites as f64
    }

    /// Iterate over the masked experiments (the Algorithm-1 inputs).
    pub fn masked(&self) -> impl Iterator<Item = &Experiment> {
        self.experiments.iter().filter(|e| e.outcome.is_masked())
    }

    /// Iterate over the SDC experiments (the filter-operation inputs).
    pub fn sdc(&self) -> impl Iterator<Item = &Experiment> {
        self.experiments.iter().filter(|e| e.outcome.is_sdc())
    }

    /// Per-site count of injections performed (any outcome) — the
    /// injection half of the §3.4 information count `S_i`.
    pub fn injection_counts(&self, n_sites: usize) -> Vec<u32> {
        let mut counts = vec![0u32; n_sites];
        for e in &self.experiments {
            counts[e.site] += 1;
        }
        counts
    }

    /// Per-site minimum injected error among known **SDC** outcomes
    /// (`+∞` where no SDC is known) — the per-site filter threshold of
    /// §3.5.
    pub fn min_sdc_injected(&self, n_sites: usize) -> Vec<f64> {
        let mut mins = vec![f64::INFINITY; n_sites];
        for e in self.sdc() {
            if e.injected_err < mins[e.site] {
                mins[e.site] = e.injected_err;
            }
        }
        mins
    }

    /// Global minimum injected error among known SDC outcomes (`+∞` if
    /// none) — the global-filter ablation.
    pub fn min_sdc_injected_global(&self) -> f64 {
        self.sdc()
            .map(|e| e.injected_err)
            .fold(f64::INFINITY, f64::min)
    }

    /// Outcome counts `(masked, sdc, crash)`.
    pub fn counts(&self) -> (usize, usize, usize) {
        let m = self.masked().count();
        let s = self.sdc().count();
        (m, s, self.experiments.len() - m - s)
    }

    /// Draw the paper's uniform sample: `k` distinct dynamic instructions
    /// chosen uniformly, **all bits injected at each** (§4.4: "if all
    /// possible error conditions are injected into a dynamic instruction,
    /// we simply use the correct boundary value" — selected instructions
    /// are tested exhaustively). A 1% sampling rate therefore means 1% of
    /// sites and `0.01 × sites × bits` experiments.
    pub fn sample_sites(injector: &Injector<'_>, k: usize, seed: u64) -> SampleSet {
        let mut rng = seeded_rng(seed);
        let sites = sample_without_replacement(injector.n_sites(), k, &mut rng);
        let bits = injector.bits();
        let faults: Vec<FaultSpec> = sites
            .into_iter()
            .flat_map(|site| (0..bits).map(move |bit| FaultSpec { site, bit }))
            .collect();
        let mut set = SampleSet::new();
        for e in injector.run_many(&faults) {
            set.insert(e);
        }
        set
    }

    /// Number of *distinct sites* covered by the experiments.
    pub fn distinct_sites(&self) -> usize {
        let mut sites: Vec<usize> = self.experiments.iter().map(|e| e.site).collect();
        sites.sort_unstable();
        sites.dedup();
        sites.len()
    }

    /// The paper's site-level sampling rate: distinct sampled sites per
    /// dynamic instruction.
    pub fn site_rate(&self, n_sites: usize) -> f64 {
        self.distinct_sites() as f64 / n_sites as f64
    }

    /// Ablation variant of [`SampleSet::sample_sites`]: one uniformly
    /// random bit per selected site (cheaper, thinner propagation data).
    pub fn sample_sites_one_bit(injector: &Injector<'_>, k: usize, seed: u64) -> SampleSet {
        let mut rng = seeded_rng(seed);
        let sites = sample_without_replacement(injector.n_sites(), k, &mut rng);
        let bits = injector.bits();
        let faults: Vec<FaultSpec> = sites
            .into_iter()
            .map(|site| FaultSpec {
                site,
                bit: rng.gen_range(0..bits),
            })
            .collect();
        let mut set = SampleSet::new();
        for e in injector.run_many(&faults) {
            set.insert(e);
        }
        set
    }

    /// Draw `k` distinct `(site, bit)` experiments uniformly from the
    /// whole `sites × bits` space. Used for large statistical
    /// ground-truth sets, where repeat visits to one site are expected
    /// and wanted.
    pub fn sample_uniform_pairs(injector: &Injector<'_>, k: usize, seed: u64) -> SampleSet {
        let mut rng = seeded_rng(seed);
        let bits = injector.bits() as usize;
        let space = injector.n_sites() * bits;
        let picks = sample_without_replacement(space, k, &mut rng);
        let faults: Vec<FaultSpec> = picks
            .into_iter()
            .map(|p| FaultSpec {
                site: p / bits,
                bit: (p % bits) as u8,
            })
            .collect();
        let mut set = SampleSet::new();
        for e in injector.run_many(&faults) {
            set.insert(e);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftb_inject::{Classifier, Outcome};
    use ftb_kernels::{MatvecConfig, MatvecKernel};

    fn exp(site: usize, bit: u8, outcome: Outcome, inj: f64) -> Experiment {
        Experiment {
            site,
            bit,
            injected_err: inj,
            output_err: 0.0,
            outcome,
        }
    }

    #[test]
    fn insert_deduplicates() {
        let mut s = SampleSet::new();
        assert!(s.insert(exp(1, 2, Outcome::Masked, 0.5)));
        assert!(!s.insert(exp(1, 2, Outcome::Sdc, 0.7)));
        assert_eq!(s.len(), 1);
        assert!(s.contains(1, 2));
        assert!(!s.contains(1, 3));
    }

    #[test]
    fn min_sdc_injected_per_site() {
        let mut s = SampleSet::new();
        s.insert(exp(0, 1, Outcome::Sdc, 3.0));
        s.insert(exp(0, 2, Outcome::Sdc, 1.5));
        s.insert(exp(0, 3, Outcome::Masked, 0.1));
        s.insert(exp(1, 1, Outcome::Masked, 9.0));
        let mins = s.min_sdc_injected(3);
        assert_eq!(mins[0], 1.5);
        assert_eq!(mins[1], f64::INFINITY);
        assert_eq!(mins[2], f64::INFINITY);
        assert_eq!(s.min_sdc_injected_global(), 1.5);
    }

    #[test]
    fn counts_and_rate() {
        let mut s = SampleSet::new();
        s.insert(exp(0, 1, Outcome::Masked, 0.0));
        s.insert(exp(1, 1, Outcome::Sdc, 1.0));
        s.insert(exp(
            2,
            1,
            Outcome::Crash(ftb_inject::CrashKind::NonFinite),
            1.0,
        ));
        assert_eq!(s.counts(), (1, 1, 1));
        assert!((s.rate(30) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn injection_counts_accumulate() {
        let mut s = SampleSet::new();
        s.insert(exp(2, 1, Outcome::Masked, 0.0));
        s.insert(exp(2, 5, Outcome::Sdc, 0.0));
        let c = s.injection_counts(4);
        assert_eq!(c, vec![0, 0, 2, 0]);
    }

    #[test]
    fn sample_uniform_hits_requested_count_deterministically() {
        let k = MatvecKernel::new(MatvecConfig {
            n: 4,
            ..MatvecConfig::small()
        });
        let inj = Injector::new(&k, Classifier::new(1e-6));
        let a = SampleSet::sample_sites(&inj, 10, 99);
        let b = SampleSet::sample_sites(&inj, 10, 99);
        assert_eq!(a.len(), 10 * 64, "10 sites x 64 bits");
        assert_eq!(a.experiments(), b.experiments());
        assert_eq!(a.distinct_sites(), 10);
        assert!((a.site_rate(inj.n_sites()) - 10.0 / inj.n_sites() as f64).abs() < 1e-12);
        let one = SampleSet::sample_sites_one_bit(&inj, 10, 99);
        assert_eq!(one.len(), 10);
        assert_eq!(one.distinct_sites(), 10);
    }
}
