//! # ftb-stats
//!
//! Statistics substrate for the `ftb` fault-tolerance-boundary library.
//!
//! The fault-injection experiments in the paper report means and standard
//! deviations over repeated trials (Tables 2–4), histograms of per-site
//! prediction error (Figure 3), and confidence intervals for the
//! statistical-fault-injection baseline it compares against. This crate
//! provides those building blocks plus the weighted sampling primitive used
//! by the adaptive sampler of Section 3.4 (probability of picking a site
//! proportional to `1 / S_i`).
//!
//! Everything here is deterministic given a seed; no global RNG state is
//! used anywhere in the workspace.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ci;
pub mod descriptive;
pub mod histogram;
pub mod online;
pub mod sampling;

pub use ci::{proportion_ci_normal, proportion_ci_wilson, ConfidenceInterval};
pub use descriptive::{mean, sample_std, sample_variance, Summary};
pub use histogram::Histogram;
pub use online::OnlineStats;
pub use sampling::{sample_weighted_without_replacement, sample_without_replacement, seeded_rng};
