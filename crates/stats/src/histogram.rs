//! Fixed-width binned histograms.
//!
//! Figure 3 of the paper summarises, per benchmark, the distribution of
//! `ΔSDC = golden_SDC − approx_SDC` over all dynamic instructions as a
//! histogram. This module provides the binning; rendering lives in
//! `ftb-report`.

use serde::{Deserialize, Serialize};

/// A histogram over `[lo, hi)` with equal-width bins.
///
/// Values outside the range are clamped into the first/last bin so that no
/// observation is silently dropped (important when summarising prediction
/// error, where a long tail is exactly what we want to see).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Create an empty histogram over `[lo, hi)` with `bins` bins.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `lo >= hi` or either bound is non-finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(
            lo.is_finite() && hi.is_finite(),
            "histogram bounds must be finite"
        );
        assert!(lo < hi, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Create a histogram sized to cover `xs` exactly, then fill it.
    /// Non-finite observations are ignored. If all values are equal the
    /// range is widened symmetrically so the single value sits mid-bin.
    pub fn auto(xs: &[f64], bins: usize) -> Self {
        let finite: Vec<f64> = xs.iter().copied().filter(|x| x.is_finite()).collect();
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &x in &finite {
            lo = lo.min(x);
            hi = hi.max(x);
        }
        if finite.is_empty() {
            lo = 0.0;
            hi = 1.0;
        } else if lo == hi {
            lo -= 0.5;
            hi += 0.5;
        } else {
            // widen the top slightly so the max lands inside the half-open range
            hi += (hi - lo) * 1e-9;
        }
        let mut h = Histogram::new(lo, hi, bins);
        for &x in &finite {
            h.add(x);
        }
        h
    }

    /// Record one observation. Non-finite values are ignored.
    pub fn add(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        let idx = ((x - self.lo) / w).floor();
        let idx = idx.clamp(0.0, (self.counts.len() - 1) as f64) as usize;
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Record every value in `xs`.
    pub fn extend(&mut self, xs: &[f64]) {
        for &x in xs {
            self.add(x);
        }
    }

    /// Raw per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of recorded observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Lower bound of the histogram range.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound of the histogram range.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Centre of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// `(lower, upper)` edges of bin `i`.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + i as f64 * w, self.lo + (i + 1) as f64 * w)
    }

    /// Fraction of all observations landing in bin `i` (0 if empty).
    pub fn fraction(&self, i: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[i] as f64 / self.total as f64
        }
    }

    /// Fraction of observations with value strictly below `x`, using
    /// whole-bin resolution (bins entirely below `x`).
    pub fn fraction_below(&self, x: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mut n = 0u64;
        for i in 0..self.bins() {
            let (_, hi) = self.bin_edges(i);
            if hi <= x {
                n += self.counts[i];
            }
        }
        n as f64 / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_binning() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.add(0.5);
        h.add(9.5);
        h.add(5.0);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.counts()[5], 1);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn out_of_range_clamped() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.add(-100.0);
        h.add(100.0);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[3], 1);
    }

    #[test]
    fn non_finite_ignored() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.add(f64::NAN);
        h.add(f64::INFINITY);
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn auto_covers_all_values() {
        let xs = [-3.0, 0.0, 7.0, 7.0, 2.0];
        let h = Histogram::auto(&xs, 5);
        assert_eq!(h.total(), 5);
        assert_eq!(h.counts().iter().sum::<u64>(), 5);
    }

    #[test]
    fn auto_constant_input() {
        let h = Histogram::auto(&[4.0; 10], 3);
        assert_eq!(h.total(), 10);
        // all land in the middle bin of a widened range
        assert_eq!(h.counts().iter().sum::<u64>(), 10);
    }

    #[test]
    fn auto_empty_input() {
        let h = Histogram::auto(&[], 3);
        assert_eq!(h.total(), 0);
        assert_eq!(h.bins(), 3);
    }

    #[test]
    fn bin_centers_and_edges() {
        let h = Histogram::new(0.0, 4.0, 4);
        assert_eq!(h.bin_center(0), 0.5);
        assert_eq!(h.bin_edges(2), (2.0, 3.0));
    }

    #[test]
    fn fraction_below() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        h.extend(&[0.5, 1.5, 2.5, 3.5]);
        assert_eq!(h.fraction_below(2.0), 0.5);
    }

    #[test]
    #[should_panic]
    fn zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }
}
