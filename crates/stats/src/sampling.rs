//! Seeded sampling primitives.
//!
//! The adaptive sampler of Section 3.4 draws dynamic-instruction indices
//! with probability `p_i ∝ 1/S_i` *without replacement* within a round;
//! the uniform Monte-Carlo campaign draws plain uniform subsets. Both are
//! implemented here so the inference code stays free of RNG plumbing.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Build a deterministic small, fast RNG from a `u64` seed.
///
/// Every stochastic component in the workspace takes an explicit seed and
/// derives its RNG through this function, so whole campaigns are exactly
/// reproducible.
pub fn seeded_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Uniformly sample `k` distinct indices from `0..n` (Floyd's algorithm,
/// O(k) expected time and memory). Returns all of `0..n` if `k >= n`.
/// The result is sorted for deterministic downstream iteration order.
pub fn sample_without_replacement(n: usize, k: usize, rng: &mut impl Rng) -> Vec<usize> {
    if k >= n {
        return (0..n).collect();
    }
    // Robert Floyd's sampling: iterate j over the last k candidate values,
    // inserting a uniform pick from 0..=j, replacing collisions with j.
    let mut chosen = std::collections::HashSet::with_capacity(k);
    for j in (n - k)..n {
        let t = rng.gen_range(0..=j);
        if !chosen.insert(t) {
            chosen.insert(j);
        }
    }
    let mut out: Vec<usize> = chosen.into_iter().collect();
    out.sort_unstable();
    out
}

/// Sample `k` distinct indices from `0..weights.len()` with probability
/// proportional to `weights[i]`, via the Efraimidis–Spirakis exponential
/// key method: draw `key_i = u_i^(1/w_i)` and keep the top `k` keys.
///
/// Zero or negative weights are treated as "never pick" (unless fewer than
/// `k` positive weights exist, in which case only the positive-weight items
/// are returned). The result is sorted.
pub fn sample_weighted_without_replacement(
    weights: &[f64],
    k: usize,
    rng: &mut impl Rng,
) -> Vec<usize> {
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    /// Min-heap entry ordered by key, so the heap root is the smallest
    /// retained key and can be evicted by a larger one.
    struct Entry {
        key: f64,
        idx: usize,
    }
    impl PartialEq for Entry {
        fn eq(&self, other: &Self) -> bool {
            self.key == other.key
        }
    }
    impl Eq for Entry {}
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> Ordering {
            // reversed: BinaryHeap is a max-heap, we want min at the root
            other.key.partial_cmp(&self.key).unwrap_or(Ordering::Equal)
        }
    }

    if k == 0 {
        return Vec::new();
    }
    let mut heap: BinaryHeap<Entry> = BinaryHeap::with_capacity(k + 1);
    for (idx, &w) in weights.iter().enumerate() {
        if w <= 0.0 || !w.is_finite() || w.is_nan() {
            continue;
        }
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let key = u.powf(1.0 / w);
        if heap.len() < k {
            heap.push(Entry { key, idx });
        } else if let Some(top) = heap.peek() {
            if key > top.key {
                heap.pop();
                heap.push(Entry { key, idx });
            }
        }
    }
    let mut out: Vec<usize> = heap.into_iter().map(|e| e.idx).collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_sample_is_distinct_and_in_range() {
        let mut rng = seeded_rng(7);
        let s = sample_without_replacement(100, 10, &mut rng);
        assert_eq!(s.len(), 10);
        let mut dedup = s.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 10, "indices must be distinct");
        assert!(s.iter().all(|&i| i < 100));
    }

    #[test]
    fn uniform_sample_k_ge_n_returns_all() {
        let mut rng = seeded_rng(7);
        let s = sample_without_replacement(5, 9, &mut rng);
        assert_eq!(s, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn uniform_sample_deterministic_per_seed() {
        let a = sample_without_replacement(1000, 50, &mut seeded_rng(42));
        let b = sample_without_replacement(1000, 50, &mut seeded_rng(42));
        assert_eq!(a, b);
        let c = sample_without_replacement(1000, 50, &mut seeded_rng(43));
        assert_ne!(a, c, "different seeds should (overwhelmingly) differ");
    }

    #[test]
    fn weighted_sample_respects_zero_weights() {
        let weights = [0.0, 1.0, 0.0, 1.0, 0.0];
        let mut rng = seeded_rng(3);
        for _ in 0..20 {
            let s = sample_weighted_without_replacement(&weights, 2, &mut rng);
            assert_eq!(s, vec![1, 3]);
        }
    }

    #[test]
    fn weighted_sample_size_capped_by_positive_weights() {
        let weights = [0.0, 2.0, 0.0];
        let mut rng = seeded_rng(3);
        let s = sample_weighted_without_replacement(&weights, 3, &mut rng);
        assert_eq!(s, vec![1]);
    }

    #[test]
    fn weighted_sample_biases_toward_heavy_items() {
        // item 0 has weight 99, items 1..=99 weight ~0.01 each; over many
        // draws of k=1, item 0 must dominate.
        let mut weights = vec![0.01; 100];
        weights[0] = 99.0;
        let mut rng = seeded_rng(11);
        let mut hits = 0;
        for _ in 0..200 {
            let s = sample_weighted_without_replacement(&weights, 1, &mut rng);
            if s == [0] {
                hits += 1;
            }
        }
        assert!(hits > 150, "heavy item picked only {hits}/200 times");
    }

    #[test]
    fn weighted_sample_k_zero() {
        let mut rng = seeded_rng(1);
        assert!(sample_weighted_without_replacement(&[1.0, 2.0], 0, &mut rng).is_empty());
    }

    #[test]
    fn weighted_sample_ignores_nan_weights() {
        let weights = [f64::NAN, 1.0];
        let mut rng = seeded_rng(5);
        let s = sample_weighted_without_replacement(&weights, 2, &mut rng);
        assert_eq!(s, vec![1]);
    }
}
