//! Descriptive statistics over slices of `f64`.
//!
//! Used throughout the bench harness to summarise repeated fault-injection
//! trials (the paper reports `mean ± std` over 10 trials in Tables 2–4).

/// Arithmetic mean of a slice. Returns `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance (Bessel's correction, `n - 1` denominator).
///
/// Returns `0.0` when fewer than two observations are available.
pub fn sample_variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Unbiased sample standard deviation.
pub fn sample_std(xs: &[f64]) -> f64 {
    sample_variance(xs).sqrt()
}

/// A five-field summary of a sample, convenient for table rows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Unbiased sample standard deviation.
    pub std: f64,
    /// Smallest observation (`0.0` if empty).
    pub min: f64,
    /// Largest observation (`0.0` if empty).
    pub max: f64,
}

impl Summary {
    /// Summarise a slice of observations.
    pub fn of(xs: &[f64]) -> Self {
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &x in xs {
            lo = lo.min(x);
            hi = hi.max(x);
        }
        if xs.is_empty() {
            lo = 0.0;
            hi = 0.0;
        }
        Summary {
            n: xs.len(),
            mean: mean(xs),
            std: sample_std(xs),
            min: lo,
            max: hi,
        }
    }

    /// Render as `mean% ± std%` with the given number of decimals,
    /// multiplying by 100 first (for ratio-valued metrics).
    pub fn pct(&self, decimals: usize) -> String {
        format!(
            "{:.d$}% ± {:.d$}%",
            self.mean * 100.0,
            self.std * 100.0,
            d = decimals
        )
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.6} ± {:.6} (n={})", self.mean, self.std, self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn mean_of_constants() {
        assert_eq!(mean(&[3.0, 3.0, 3.0]), 3.0);
    }

    #[test]
    fn variance_matches_hand_computation() {
        // sample {1, 2, 3, 4}: mean 2.5, sample variance 5/3
        let v = sample_variance(&[1.0, 2.0, 3.0, 4.0]);
        assert!((v - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn variance_of_singleton_is_zero() {
        assert_eq!(sample_variance(&[7.0]), 0.0);
        assert_eq!(sample_std(&[7.0]), 0.0);
    }

    #[test]
    fn summary_min_max() {
        let s = Summary::of(&[2.0, -1.0, 5.0]);
        assert_eq!(s.min, -1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.n, 3);
    }

    #[test]
    fn summary_of_empty() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 0.0);
    }

    #[test]
    fn pct_formatting() {
        let s = Summary::of(&[0.5, 0.5]);
        assert_eq!(s.pct(1), "50.0% ± 0.0%");
    }
}
