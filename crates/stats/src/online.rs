//! Welford online mean/variance accumulator.
//!
//! Campaigns stream millions of experiment outcomes; the harness folds
//! per-trial metrics into this accumulator instead of buffering every
//! observation (the Performance Book's "avoid collecting when you only
//! iterate once" rule applied to statistics).

use serde::{Deserialize, Serialize};

/// Numerically stable single-pass mean/variance (Welford's algorithm).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// A fresh, empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold one observation in.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator into this one (parallel reduction;
    /// Chan et al. pairwise combination).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations folded in so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Current mean (`0.0` if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (`0.0` with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Unbiased sample standard deviation.
    pub fn std(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`0.0` if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum observation (`0.0` if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptive::{mean, sample_variance};

    #[test]
    fn matches_batch_statistics() {
        let xs = [1.5, -2.0, 3.25, 0.0, 10.0, 4.5];
        let mut o = OnlineStats::new();
        for &x in &xs {
            o.push(x);
        }
        assert!((o.mean() - mean(&xs)).abs() < 1e-12);
        assert!((o.variance() - sample_variance(&xs)).abs() < 1e-12);
        assert_eq!(o.min(), -2.0);
        assert_eq!(o.max(), 10.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..3] {
            a.push(x);
        }
        for &x in &xs[3..] {
            b.push(x);
        }
        a.merge(&b);
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.variance() - whole.variance()).abs() < 1e-12);
        assert_eq!(a.count(), whole.count());
    }

    #[test]
    fn merge_with_empty() {
        let mut a = OnlineStats::new();
        a.push(2.0);
        let b = OnlineStats::new();
        a.merge(&b);
        assert_eq!(a.count(), 1);
        let mut c = OnlineStats::new();
        c.merge(&a);
        assert_eq!(c.count(), 1);
        assert_eq!(c.mean(), 2.0);
    }

    #[test]
    fn empty_accessors() {
        let o = OnlineStats::new();
        assert_eq!(o.mean(), 0.0);
        assert_eq!(o.variance(), 0.0);
        assert_eq!(o.min(), 0.0);
        assert_eq!(o.max(), 0.0);
    }
}
