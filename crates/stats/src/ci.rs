//! Confidence intervals for proportions.
//!
//! The statistical-fault-injection baseline the paper compares against
//! (Leveugle et al., DATE'09) estimates an overall SDC ratio from a random
//! sample and quantifies it with a binomial confidence interval. We provide
//! both the classic normal approximation and the Wilson score interval
//! (better behaved at the extreme ratios typical of resilient kernels).

use serde::{Deserialize, Serialize};

/// A two-sided confidence interval `[lo, hi]` around a point estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Point estimate.
    pub estimate: f64,
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
    /// Confidence level used (e.g. `0.95`).
    pub level: f64,
}

impl ConfidenceInterval {
    /// Half-width of the interval.
    pub fn half_width(&self) -> f64 {
        (self.hi - self.lo) / 2.0
    }

    /// Whether `x` is inside the interval (inclusive).
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo && x <= self.hi
    }
}

/// Two-sided standard-normal quantile for the given confidence level,
/// computed with the Acklam rational approximation of the probit function
/// (absolute error < 1.15e-9, far below anything visible in our tables).
pub fn z_for_level(level: f64) -> f64 {
    assert!(
        level > 0.0 && level < 1.0,
        "confidence level must be in (0, 1), got {level}"
    );
    let p = 1.0 - (1.0 - level) / 2.0; // upper-tail probability point
    probit(p)
}

/// Inverse CDF of the standard normal (Acklam's algorithm).
fn probit(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0);
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    const P_HIGH: f64 = 1.0 - P_LOW;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Normal-approximation (Wald) interval for a proportion: `successes`
/// positives out of `n` trials at the given confidence `level`.
///
/// Bounds are clamped to `[0, 1]`.
pub fn proportion_ci_normal(successes: u64, n: u64, level: f64) -> ConfidenceInterval {
    assert!(n > 0, "need at least one trial");
    assert!(successes <= n, "successes cannot exceed trials");
    let p = successes as f64 / n as f64;
    let z = z_for_level(level);
    let half = z * (p * (1.0 - p) / n as f64).sqrt();
    ConfidenceInterval {
        estimate: p,
        lo: (p - half).max(0.0),
        hi: (p + half).min(1.0),
        level,
    }
}

/// Wilson score interval for a proportion. Never collapses to a point at
/// `p = 0` or `p = 1`, which matters for highly resilient kernels where a
/// small sample sees zero SDC events.
pub fn proportion_ci_wilson(successes: u64, n: u64, level: f64) -> ConfidenceInterval {
    assert!(n > 0, "need at least one trial");
    assert!(successes <= n, "successes cannot exceed trials");
    let p = successes as f64 / n as f64;
    let z = z_for_level(level);
    let nf = n as f64;
    let z2 = z * z;
    let denom = 1.0 + z2 / nf;
    let center = (p + z2 / (2.0 * nf)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / nf + z2 / (4.0 * nf * nf)).sqrt();
    ConfidenceInterval {
        estimate: p,
        lo: (center - half).max(0.0),
        hi: (center + half).min(1.0),
        level,
    }
}

/// Sample size needed by the normal approximation to estimate a proportion
/// near `p_guess` within `±margin` at confidence `level`. This is the
/// planning formula of statistical fault injection (Leveugle et al.),
/// which we use as the baseline in the sample-efficiency benches.
pub fn required_sample_size(p_guess: f64, margin: f64, level: f64) -> u64 {
    assert!(margin > 0.0, "margin must be positive");
    let z = z_for_level(level);
    let p = p_guess.clamp(1e-12, 1.0 - 1e-12);
    (z * z * p * (1.0 - p) / (margin * margin)).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn z_values_match_tables() {
        assert!((z_for_level(0.95) - 1.959964).abs() < 1e-4);
        assert!((z_for_level(0.99) - 2.575829).abs() < 1e-4);
        assert!((z_for_level(0.90) - 1.644854).abs() < 1e-4);
    }

    #[test]
    fn probit_symmetry() {
        for p in [0.01, 0.1, 0.25, 0.4] {
            assert!((probit(p) + probit(1.0 - p)).abs() < 1e-8);
        }
    }

    #[test]
    fn normal_ci_contains_estimate() {
        let ci = proportion_ci_normal(50, 100, 0.95);
        assert!((ci.estimate - 0.5).abs() < 1e-12);
        assert!(ci.contains(0.5));
        assert!((ci.half_width() - 1.959964 * 0.05).abs() < 1e-4);
    }

    #[test]
    fn wilson_nonzero_at_extremes() {
        let ci = proportion_ci_wilson(0, 100, 0.95);
        assert_eq!(ci.estimate, 0.0);
        assert!(ci.hi > 0.0, "Wilson upper bound must be positive at p=0");
        let ci = proportion_ci_wilson(100, 100, 0.95);
        assert!(ci.lo < 1.0, "Wilson lower bound must be < 1 at p=1");
    }

    #[test]
    fn wilson_narrower_with_more_samples() {
        let small = proportion_ci_wilson(10, 100, 0.95);
        let large = proportion_ci_wilson(1000, 10000, 0.95);
        assert!(large.half_width() < small.half_width());
    }

    #[test]
    fn required_sample_size_classic_case() {
        // p=0.5, ±3%, 95% -> the textbook ~1068
        let n = required_sample_size(0.5, 0.03, 0.95);
        assert!((1060..=1070).contains(&n), "got {n}");
    }

    #[test]
    fn clamped_bounds() {
        let ci = proportion_ci_normal(1, 100, 0.99);
        assert!(ci.lo >= 0.0);
        let ci = proportion_ci_normal(99, 100, 0.99);
        assert!(ci.hi <= 1.0);
    }

    #[test]
    #[should_panic]
    fn zero_trials_panics() {
        let _ = proportion_ci_normal(0, 0, 0.95);
    }
}
