//! Shared fixtures for the `ftb` integration test suite.
//!
//! The integration tests exercise whole pipelines across crates — kernel
//! → injector → sampler → inference → prediction → metrics — on kernels
//! small enough that even exhaustive ground truth is cheap in a debug
//! test run.

use ftb_core::prelude::*;
use ftb_kernels::{
    CgConfig, FftConfig, GemmConfig, JacobiConfig, Kernel, KernelConfig, LuConfig, MatvecConfig,
    SpmvConfig, StencilConfig,
};

/// Tiny variants of every kernel, with tolerances that give a non-trivial
/// masked/SDC mix.
pub fn tiny_suite() -> Vec<(KernelConfig, f64)> {
    vec![
        (
            KernelConfig::Cg(CgConfig {
                grid: 4,
                max_iters: 100,
                ..CgConfig::small()
            }),
            1e-1,
        ),
        (
            KernelConfig::Lu(LuConfig {
                n: 8,
                block: 4,
                ..LuConfig::small()
            }),
            3e-5,
        ),
        (
            KernelConfig::Fft(FftConfig {
                n1: 4,
                n2: 4,
                ..FftConfig::small()
            }),
            1.0,
        ),
        (
            KernelConfig::Stencil(StencilConfig {
                grid: 6,
                sweeps: 3,
                ..StencilConfig::small()
            }),
            1e-6,
        ),
        (
            KernelConfig::Matvec(MatvecConfig {
                n: 6,
                ..MatvecConfig::small()
            }),
            1e-6,
        ),
        (
            KernelConfig::Gemm(GemmConfig {
                n: 5,
                ..GemmConfig::small()
            }),
            1e-6,
        ),
        (
            KernelConfig::Spmv(SpmvConfig {
                grid: 5,
                ..SpmvConfig::small()
            }),
            1e-6,
        ),
        (
            KernelConfig::Jacobi(JacobiConfig {
                grid: 4,
                sweeps: 10,
                ..JacobiConfig::small()
            }),
            1e-4,
        ),
    ]
}

/// Build a kernel and run `f` with an analysis session over it.
pub fn with_analysis<R>(
    config: &KernelConfig,
    tolerance: f64,
    f: impl FnOnce(&dyn Kernel, &Analysis<'_>) -> R,
) -> R {
    let kernel = config.build();
    let analysis = Analysis::new(kernel.as_ref(), Classifier::new(tolerance));
    f(kernel.as_ref(), &analysis)
}
