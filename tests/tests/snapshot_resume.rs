//! Snapshot-resume differential tests: experiments served from
//! golden-run boundary snapshots must be **bit-identical** to
//! from-scratch execution — across every extraction mode, across worker
//! thread counts, and across a kill/resume of a snapshot-backed ledger
//! campaign mid-section. The snapshot store is a pure performance
//! artefact; nothing downstream may be able to tell it was there.

use ftb_core::prelude::*;
use ftb_inject::{
    monte_carlo_plan, read_ledger, schedule_snapshot_major, CampaignBinding, ChunkedCampaign,
    Experiment, LedgerError,
};
use ftb_kernels::{JacobiConfig, JacobiKernel, KernelConfig};
use ftb_trace::FaultSpec;
use std::path::PathBuf;

fn cfg() -> JacobiConfig {
    JacobiConfig {
        sweeps: 8,
        ..JacobiConfig::small()
    }
}

fn kernel() -> JacobiKernel {
    JacobiKernel::new(cfg())
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ftb-snapshot-resume-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Faults spread over the whole trace (early sites have no serving
/// snapshot, so both execution paths are exercised) and over the whole
/// word (low bits reconverge, high bits crash or corrupt).
fn spread_faults(n_sites: usize, count: usize) -> Vec<FaultSpec> {
    (0..count)
        .map(|i| FaultSpec {
            site: i * (n_sites - 1) / (count - 1),
            bit: (i * 11 % 64) as u8,
        })
        .collect()
}

fn binding(inj: &Injector<'_>, plan: &str) -> CampaignBinding {
    CampaignBinding {
        kernel: KernelConfig::Jacobi(cfg()),
        classifier: *inj.classifier(),
        n_sites: inj.n_sites(),
        bits: inj.bits(),
        plan: plan.to_string(),
        bit_prune: None,
        snapshot: inj.snapshot_store().map(|s| s.binding()),
    }
}

/// Snapshot-started experiments are bit-identical to from-scratch ones
/// in every extraction mode and under 1, 4, and 8 worker threads — both
/// as in-memory values and through the serialized (ledger) byte form.
#[test]
fn snapshot_resume_is_bit_identical_across_modes_and_threads() {
    let k = kernel();
    let classifier = Classifier::new(1e-6);
    let n = Injector::new(&k, classifier).n_sites();
    let faults = spread_faults(n, 36);

    for mode in [
        ExtractionMode::Buffered,
        ExtractionMode::Lockstep { capacity: 32 },
        ExtractionMode::Streamed,
    ] {
        let reference = Injector::new(&k, classifier)
            .with_extraction(mode)
            .run_batch(&faults);
        let ref_bytes = serde_json::to_string(&reference).unwrap();
        for threads in [1usize, 4, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let inj = Injector::new(&k, classifier)
                .with_extraction(mode)
                .with_snapshots(usize::MAX);
            assert!(inj.snapshot_store().is_some());
            let got: Vec<Experiment> = pool.install(|| inj.run_batch(&faults));
            assert_eq!(reference, got, "{mode:?} with {threads} threads diverged");
            assert_eq!(
                ref_bytes,
                serde_json::to_string(&got).unwrap(),
                "{mode:?} with {threads} threads serialized differently"
            );
        }
    }
}

/// Contraction-certificate early exits (`--certified` analyses) keep
/// the exhaustive outcome table cell-for-cell identical to from-scratch
/// execution: a certificate may only fire where Masked is provable.
#[test]
fn certified_exits_keep_exhaustive_table_identical() {
    let k = kernel();
    let scratch = Analysis::new(&k, Classifier::new(1e-6)).exhaustive();
    let certified = Analysis::new(&k, Classifier::new(1e-6))
        .with_certified_exits()
        .with_snapshots(usize::MAX)
        .exhaustive();
    assert_eq!(scratch, certified);
}

/// A snapshot-backed ledger campaign killed mid-section (the chunk
/// boundary falls inside a snapshot-major section, not at its edge) and
/// resumed from the ledger matches the uninterrupted run exactly, and
/// re-executes only the missing tail.
#[test]
fn snapshot_campaign_kill_resume_mid_section_matches_uninterrupted() {
    let k = kernel();
    let inj = Injector::new(&k, Classifier::new(1e-6)).with_snapshots(usize::MAX);
    let store = inj.snapshot_store().unwrap();
    let plan = schedule_snapshot_major(&monte_carlo_plan(inj.n_sites(), inj.bits(), 180, 7), store);
    let desc = "mc n=180 seed=7 snapshot-major";

    // uninterrupted reference, same injector and plan order
    let mut full = ChunkedCampaign::new(&inj, plan.clone(), 32);
    full.run_to_completion().unwrap();
    let reference = full.into_experiments();

    // the kill: one 32-experiment chunk lands inside a section (sections
    // span ~25 experiments here), then the process dies with no shutdown
    let path = tmp("snapshot-mid-section.jsonl");
    let _ = std::fs::remove_file(&path);
    let mut first = ChunkedCampaign::new(&inj, plan.clone(), 32)
        .with_ledger(&path, binding(&inj, desc), false)
        .unwrap();
    first.step().unwrap();
    drop(first);

    let mut resumed = ChunkedCampaign::new(&inj, plan, 32)
        .with_ledger(&path, binding(&inj, desc), true)
        .unwrap();
    resumed.run_to_completion().unwrap();
    let metrics = resumed.metrics();
    assert_eq!(metrics.resumed, 32);
    assert_eq!(metrics.executed, 180 - 32);
    assert_eq!(reference, resumed.into_experiments());

    // the finished ledger holds the full campaign, byte-faithfully
    assert_eq!(read_ledger(&path).unwrap().experiments, reference);
    let _ = std::fs::remove_file(&path);
}

/// A ledger recorded under one snapshot store must refuse to resume
/// under a different store: the snapshot binding (count + content
/// digest) is part of the campaign identity.
#[test]
fn snapshot_campaign_resume_rejects_different_store() {
    let k = kernel();
    let inj = Injector::new(&k, Classifier::new(1e-6)).with_snapshots(4);
    let plan = monte_carlo_plan(inj.n_sites(), inj.bits(), 60, 3);
    let desc = "mc n=60 seed=3";

    let path = tmp("snapshot-binding-mismatch.jsonl");
    let _ = std::fs::remove_file(&path);
    let mut first = ChunkedCampaign::new(&inj, plan.clone(), 16)
        .with_ledger(&path, binding(&inj, desc), false)
        .unwrap();
    first.step().unwrap();
    drop(first);

    // same campaign, different snapshot store (2 boundaries, not 4)
    let other = Injector::new(&k, Classifier::new(1e-6)).with_snapshots(2);
    match ChunkedCampaign::new(&other, plan, 16).with_ledger(&path, binding(&other, desc), true) {
        Err(LedgerError::BindingMismatch { .. }) => {}
        Err(e) => panic!("unexpected error: {e}"),
        Ok(_) => panic!("resume under a different snapshot store must be refused"),
    }
    let _ = std::fs::remove_file(&path);
}

// ---------------------------------------------------------------- CLI level

fn cli(args: &[&str]) -> String {
    let raw: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let parsed = ftb_cli::parse(&raw).unwrap();
    ftb_cli::commands::dispatch(&parsed).unwrap()
}

/// End-to-end: a `--snapshot` campaign crashed mid-run (torn tail) and
/// resumed produces a report and ledger identical to the uninterrupted
/// snapshot run — and to the plain from-scratch run of the same
/// campaign, since snapshots must be invisible in every artefact.
#[test]
fn cli_snapshot_campaign_crash_resume_matches_uninterrupted() {
    let snap_ledger = tmp("cli-snap-ledger.jsonl");
    let _ = std::fs::remove_file(&snap_ledger);
    let sl = snap_ledger.to_str().unwrap();

    let base = [
        "campaign",
        "--kernel",
        "jacobi",
        "--grid",
        "4",
        "--sweeps",
        "10",
        "--tolerance",
        "1e-4",
        "--samples",
        "120",
        "--seed",
        "5",
    ];

    // from-scratch reference report (no ledger, no snapshots)
    let scratch_out = cli(&base);

    // snapshot run with a ledger, crashed at 60 records with a torn tail
    let mut snap = base.to_vec();
    snap.extend(["--snapshot", "--snapshot-max", "4", "--checkpoint", sl]);
    let snap_out = cli(&snap);
    assert_eq!(
        scratch_out, snap_out,
        "snapshots must not change the report"
    );
    let text = std::fs::read_to_string(&snap_ledger).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 121, "header + 120 records");
    let mut crashed = lines[..61].join("\n");
    crashed.push_str("\n{\"site\":4,\"bit\"");
    let full_bytes = text.clone().into_bytes();
    std::fs::write(&snap_ledger, crashed).unwrap();

    // resume under the same snapshot flags: identical report, and the
    // healed ledger is byte-identical to the uninterrupted one
    let mut resume = snap.to_vec();
    resume.push("--resume");
    let resumed_out = cli(&resume);
    assert_eq!(snap_out, resumed_out);
    assert_eq!(full_bytes, std::fs::read(&snap_ledger).unwrap());

    let _ = std::fs::remove_file(&snap_ledger);
}
