//! Integration tests for the extension features: lockstep propagation,
//! the pilot-grouping baseline, and compact golden storage — exercised
//! across kernels rather than on a single fixture.

use ftb_core::prelude::*;
use ftb_inject::fold_propagation_lockstep;
use ftb_integration::{tiny_suite, with_analysis};
use ftb_trace::{CompactGolden, FaultSpec};

#[test]
fn lockstep_equals_buffered_on_every_kernel() {
    for (config, tol) in tiny_suite() {
        with_analysis(&config, tol, |kernel, analysis| {
            let injector = analysis.injector();
            let site = analysis.n_sites() / 2;
            let bit = 20;
            let (exp, prop) = injector.run_one_traced(site, bit);
            let buffered: Vec<(usize, f64)> = prop.iter().filter(|&(_, d)| d > 0.0).collect();

            let mut streamed = Vec::new();
            let report = fold_propagation_lockstep(
                kernel,
                FaultSpec { site, bit },
                injector.classifier(),
                32,
                |s, d| streamed.push((s, d)),
            );
            assert_eq!(
                streamed,
                buffered,
                "{}: lockstep fold differs",
                kernel.name()
            );
            assert_eq!(
                report.outcome,
                exp.outcome,
                "{}: outcome differs",
                kernel.name()
            );
        });
    }
}

#[test]
fn pilot_baseline_runs_on_every_kernel() {
    for (config, tol) in tiny_suite() {
        with_analysis(&config, tol, |kernel, analysis| {
            let est = pilot_estimate(analysis.injector(), &PilotConfig::default());
            assert_eq!(est.per_site.len(), analysis.n_sites());
            assert!(
                (est.samples.len() as u64) <= analysis.golden().n_experiments(),
                "{}: pilot cost exceeds exhaustive",
                kernel.name()
            );
            let truth = analysis.exhaustive();
            // pilot overall estimate is in the ballpark of the truth for
            // these small kernels (grouping assumption approximately holds)
            let err = (est.overall_sdc_ratio() - truth.overall_sdc_ratio()).abs();
            assert!(err < 0.20, "{}: pilot overall err {err}", kernel.name());
        });
    }
}

#[test]
fn compact_golden_roundtrips_every_kernel() {
    for (config, _) in tiny_suite() {
        let kernel = config.build();
        let golden = kernel.golden();
        let compact = CompactGolden::from_golden(&golden);
        assert_eq!(compact.to_golden(), golden, "{}", kernel.name());
        assert!(
            compact.memory_bytes() <= golden.memory_bytes(),
            "{}: compaction grew the trace",
            kernel.name()
        );
    }
}

#[test]
fn streaming_inference_matches_buffered_on_every_kernel() {
    use ftb_core::infer_boundary_streaming;
    for (config, tol) in tiny_suite() {
        with_analysis(&config, tol, |kernel, analysis| {
            let samples = analysis.sample_uniform(0.1, 77);
            let buffered = analysis.infer(&samples, FilterMode::PerSite);
            let streamed = infer_boundary_streaming(
                kernel,
                analysis.injector(),
                &samples,
                FilterMode::PerSite,
                16,
            );
            assert_eq!(
                buffered.boundary,
                streamed.boundary,
                "{}: streaming inference differs",
                kernel.name()
            );
        });
    }
}
