//! Behavioural guarantees of the §3.4 adaptive sampler, cross-crate.

use ftb_core::prelude::*;
use ftb_integration::{tiny_suite, with_analysis};
use ftb_kernels::{JacobiConfig, JacobiKernel, Kernel};

#[test]
fn adaptive_uses_far_fewer_experiments_than_exhaustive() {
    for (config, tol) in tiny_suite() {
        with_analysis(&config, tol, |kernel, analysis| {
            let res = analysis.adaptive(&AdaptiveConfig::default());
            let full = analysis.golden().n_experiments();
            assert!(
                (res.samples.len() as u64) < full / 2,
                "{}: adaptive used {} of {} experiments",
                kernel.name(),
                res.samples.len(),
                full
            );
        });
    }
}

#[test]
fn adaptive_prediction_tracks_golden_ratio() {
    for (config, tol) in tiny_suite() {
        with_analysis(&config, tol, |kernel, analysis| {
            let truth = analysis.exhaustive();
            let res = analysis.adaptive(&AdaptiveConfig::default());
            let predicted = analysis
                .profile(&res.inference.boundary, &truth, Some(&res.samples))
                .overall()
                .1;
            let golden = truth.overall_sdc_ratio();
            assert!(
                (predicted - golden).abs() < 0.12,
                "{}: adaptive predicted {predicted:.3} vs golden {golden:.3}",
                kernel.name()
            );
        });
    }
}

#[test]
fn candidate_space_shrinks_monotonically() {
    let (config, tol) = &tiny_suite()[2]; // fft
    with_analysis(config, *tol, |_, analysis| {
        let res = analysis.adaptive(&AdaptiveConfig {
            stop_sdc_fraction: 2.0, // only stop via dry rounds / exhaustion
            max_rounds: 12,
            ..Default::default()
        });
        for w in res.rounds.windows(2) {
            assert!(w[1].candidates_left <= w[0].candidates_left);
        }
    });
}

#[test]
fn adaptive_beats_uniform_at_equal_budget_on_prediction_error() {
    // the paper's efficiency claim, in miniature: for the same number of
    // experiments, adaptive sampling predicts the overall SDC ratio at
    // least as well as uniform sampling (almost always strictly better,
    // since it stops spending on already-predicted regions)
    let (config, tol) = &tiny_suite()[0]; // CG
    with_analysis(config, *tol, |_, analysis| {
        let truth = analysis.exhaustive();
        let golden = truth.overall_sdc_ratio();

        let adaptive = analysis.adaptive(&AdaptiveConfig {
            seed: 41,
            ..Default::default()
        });
        let adaptive_pred = analysis
            .profile(
                &adaptive.inference.boundary,
                &truth,
                Some(&adaptive.samples),
            )
            .overall()
            .1;

        // uniform with the same experiment count
        let bits = usize::from(analysis.golden().precision.bits());
        let sites = (adaptive.samples.len() / bits).max(1);
        let uniform = SampleSet::sample_sites(analysis.injector(), sites, 41);
        let uniform_inf = analysis.infer(&uniform, FilterMode::PerSite);
        let uniform_pred = analysis
            .profile(&uniform_inf.boundary, &truth, Some(&uniform))
            .overall()
            .1;

        let adaptive_err = (adaptive_pred - golden).abs();
        let uniform_err = (uniform_pred - golden).abs();
        assert!(
            adaptive_err <= uniform_err + 0.02,
            "adaptive err {adaptive_err:.4} worse than uniform err {uniform_err:.4}"
        );
    });
}

#[test]
fn static_prior_reaches_cold_start_recall_in_fewer_rounds() {
    // the payoff of seeding the §3.4 sampler with the zero-injection
    // static certificate: the same recall as a cold start, in measurably
    // fewer sampling rounds
    let k = JacobiKernel::new(JacobiConfig {
        grid: 4,
        sweeps: 10,
        ..JacobiConfig::small()
    });
    let tol = 1e-4;
    let (golden, ddg) = k.golden_with_ddg();
    let prior = static_bound(&ddg, &StaticBoundConfig::new(tol))
        .expect("jacobi is provenance-instrumented")
        .boundary();
    let inj = Injector::with_golden(&k, golden, Classifier::new(tol));
    let truth = inj.exhaustive();
    let cfg = AdaptiveConfig::default();

    let recall_of = |state: &AdaptiveState| {
        let b = state.finish(&inj).inference.boundary;
        BoundaryEval::against_exhaustive(&Predictor::new(inj.golden(), &b), &truth).recall
    };

    // recall trajectory: entry r = recall after r rounds (entry 0 = the
    // starting state, before any sampling)
    let trajectory = |mut state: AdaptiveState| {
        let mut t = vec![recall_of(&state)];
        while state.step(&inj).is_some() {
            t.push(recall_of(&state));
        }
        t
    };

    let cold = trajectory(AdaptiveState::new(&inj, &cfg));
    let seeded = trajectory(AdaptiveState::with_prior(&inj, &cfg, prior));
    let cold_final = *cold.last().unwrap();
    let seeded_final = *seeded.last().unwrap();
    assert!(cold_final > 0.0, "cold start learned nothing");
    assert!(
        seeded_final >= 0.9 * cold_final,
        "seeded run's final recall collapsed: {seeded_final:.4} vs cold {cold_final:.4}"
    );

    // rounds each needs to reach the recall level both eventually achieve
    let target = cold_final.min(seeded_final) - 1e-12;
    let rounds_to = |t: &[f64]| t.iter().position(|&r| r >= target).unwrap();
    let (cold_rounds, seeded_rounds) = (rounds_to(&cold), rounds_to(&seeded));
    println!(
        "cold: {cold:?}\nseeded: {seeded:?}\n\
         target {target:.4}: cold {cold_rounds} rounds, seeded {seeded_rounds} rounds"
    );
    assert!(
        seeded_rounds < cold_rounds,
        "seeding saved no rounds: seeded {seeded_rounds} vs cold {cold_rounds} \
         to recall {target:.4}"
    );
}

#[test]
fn rounds_report_consistent_counts() {
    let (config, tol) = &tiny_suite()[1]; // lu
    with_analysis(config, *tol, |_, analysis| {
        let res = analysis.adaptive(&AdaptiveConfig::default());
        let mut total = 0;
        for r in &res.rounds {
            assert_eq!(r.n_run, r.n_masked + r.n_sdc + r.n_crash);
            total += r.n_run;
        }
        assert_eq!(total, res.samples.len());
    });
}
