//! Behavioural guarantees of the §3.4 adaptive sampler, cross-crate.

use ftb_core::prelude::*;
use ftb_integration::{tiny_suite, with_analysis};

#[test]
fn adaptive_uses_far_fewer_experiments_than_exhaustive() {
    for (config, tol) in tiny_suite() {
        with_analysis(&config, tol, |kernel, analysis| {
            let res = analysis.adaptive(&AdaptiveConfig::default());
            let full = analysis.golden().n_experiments();
            assert!(
                (res.samples.len() as u64) < full / 2,
                "{}: adaptive used {} of {} experiments",
                kernel.name(),
                res.samples.len(),
                full
            );
        });
    }
}

#[test]
fn adaptive_prediction_tracks_golden_ratio() {
    for (config, tol) in tiny_suite() {
        with_analysis(&config, tol, |kernel, analysis| {
            let truth = analysis.exhaustive();
            let res = analysis.adaptive(&AdaptiveConfig::default());
            let predicted = analysis
                .profile(&res.inference.boundary, &truth, Some(&res.samples))
                .overall()
                .1;
            let golden = truth.overall_sdc_ratio();
            assert!(
                (predicted - golden).abs() < 0.12,
                "{}: adaptive predicted {predicted:.3} vs golden {golden:.3}",
                kernel.name()
            );
        });
    }
}

#[test]
fn candidate_space_shrinks_monotonically() {
    let (config, tol) = &tiny_suite()[2]; // fft
    with_analysis(config, *tol, |_, analysis| {
        let res = analysis.adaptive(&AdaptiveConfig {
            stop_sdc_fraction: 2.0, // only stop via dry rounds / exhaustion
            max_rounds: 12,
            ..Default::default()
        });
        for w in res.rounds.windows(2) {
            assert!(w[1].candidates_left <= w[0].candidates_left);
        }
    });
}

#[test]
fn adaptive_beats_uniform_at_equal_budget_on_prediction_error() {
    // the paper's efficiency claim, in miniature: for the same number of
    // experiments, adaptive sampling predicts the overall SDC ratio at
    // least as well as uniform sampling (almost always strictly better,
    // since it stops spending on already-predicted regions)
    let (config, tol) = &tiny_suite()[0]; // CG
    with_analysis(config, *tol, |_, analysis| {
        let truth = analysis.exhaustive();
        let golden = truth.overall_sdc_ratio();

        let adaptive = analysis.adaptive(&AdaptiveConfig {
            seed: 41,
            ..Default::default()
        });
        let adaptive_pred = analysis
            .profile(
                &adaptive.inference.boundary,
                &truth,
                Some(&adaptive.samples),
            )
            .overall()
            .1;

        // uniform with the same experiment count
        let bits = usize::from(analysis.golden().precision.bits());
        let sites = (adaptive.samples.len() / bits).max(1);
        let uniform = SampleSet::sample_sites(analysis.injector(), sites, 41);
        let uniform_inf = analysis.infer(&uniform, FilterMode::PerSite);
        let uniform_pred = analysis
            .profile(&uniform_inf.boundary, &truth, Some(&uniform))
            .overall()
            .1;

        let adaptive_err = (adaptive_pred - golden).abs();
        let uniform_err = (uniform_pred - golden).abs();
        assert!(
            adaptive_err <= uniform_err + 0.02,
            "adaptive err {adaptive_err:.4} worse than uniform err {uniform_err:.4}"
        );
    });
}

#[test]
fn rounds_report_consistent_counts() {
    let (config, tol) = &tiny_suite()[1]; // lu
    with_analysis(config, *tol, |_, analysis| {
        let res = analysis.adaptive(&AdaptiveConfig::default());
        let mut total = 0;
        for r in &res.rounds {
            assert_eq!(r.n_run, r.n_masked + r.n_sdc + r.n_crash);
            total += r.n_run;
        }
        assert_eq!(total, res.samples.len());
    });
}
