//! Differential harness across the three propagation-extraction paths.
//!
//! Buffered (full-trace record + after-the-fact comparison), lockstep
//! (computation duplication over bounded channels) and streamed
//! (one-sided comparison against the shared compact golden trace) are
//! three implementations of the paper's §2.2 extractor; campaigns may
//! pick any of them, so they must be **bit-identical**: same
//! `Propagation` folds, same `Outcome` classifications, same
//! `injected_err`/`output_err`, across every kernel, fault site, bit,
//! and control-flow shape.

use ftb_inject::{Classifier, ExtractionMode, Injector};
use ftb_integration::tiny_suite;
use ftb_kernels::{CgConfig, Kernel, KernelConfig};
use ftb_trace::{
    propagation, streamed_propagation, CompactGolden, CompareScratch, FaultSpec, Propagation,
    RecordMode, Tracer,
};
use proptest::prelude::*;

/// Everything one extraction produces, in comparable form.
#[derive(Debug, Clone, PartialEq)]
struct Extraction {
    folded: Vec<(usize, u64)>,
    injected_err: u64,
    output_err: u64,
    outcome: u8,
    compare_len: usize,
    diverged: bool,
    max_err: u64,
}

/// Run one `(site, bit)` experiment through `mode`, capturing the fold
/// with errors as raw bit patterns so equality is bitwise, not approximate.
fn extract(
    kernel: &dyn Kernel,
    tol: f64,
    mode: ExtractionMode,
    site: usize,
    bit: u8,
) -> Extraction {
    let inj = Injector::new(kernel, Classifier::new(tol)).with_extraction(mode);
    let mut folded = Vec::new();
    let summary = inj.extract_propagation(site, bit, |s, d| folded.push((s, d.to_bits())));
    Extraction {
        folded,
        injected_err: summary.experiment.injected_err.to_bits(),
        output_err: summary.experiment.output_err.to_bits(),
        outcome: summary.experiment.outcome.code(),
        compare_len: summary.compare_len,
        diverged: summary.diverged,
        max_err: summary.max_err.to_bits(),
    }
}

fn assert_paths_agree(config: &KernelConfig, tol: f64, site: usize, bit: u8) {
    let kernel = config.build();
    let buffered = extract(kernel.as_ref(), tol, ExtractionMode::Buffered, site, bit);
    let lockstep = extract(
        kernel.as_ref(),
        tol,
        ExtractionMode::Lockstep { capacity: 16 },
        site,
        bit,
    );
    let streamed = extract(kernel.as_ref(), tol, ExtractionMode::Streamed, site, bit);
    assert_eq!(
        buffered, streamed,
        "buffered vs streamed disagree: {config:?} site {site} bit {bit}"
    );
    assert_eq!(
        buffered, lockstep,
        "buffered vs lockstep disagree: {config:?} site {site} bit {bit}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The core differential property: an arbitrary kernel, site and bit
    /// produce bit-identical extractions on all three paths.
    #[test]
    fn all_paths_agree_on_arbitrary_faults(
        kernel_idx in 0usize..8,
        site_raw in any::<usize>(),
        bit_raw in any::<u8>(),
    ) {
        let (config, tol) = &tiny_suite()[kernel_idx];
        let kernel = config.build();
        let n_sites = kernel.golden().n_sites();
        let bits = kernel.precision().bits();
        let site = site_raw % n_sites;
        let bit = bit_raw % bits;
        assert_paths_agree(config, *tol, site, bit);
    }
}

/// High bits of early sites: the faults most likely to derail control
/// flow (divergence, crashes, hangs) on every kernel in the suite.
#[test]
fn all_paths_agree_on_high_bit_faults_across_kernels() {
    for (config, tol) in &tiny_suite() {
        let kernel = config.build();
        let bits = kernel.precision().bits();
        for site in [0, 1] {
            for bit in [bits - 1, bits - 2, 0] {
                assert_paths_agree(config, *tol, site, bit);
            }
        }
    }
}

/// Divergent control flow (the early-consumer-stop path): find faults
/// that change CG's iteration count, then check all three extractors
/// agree there. In lockstep this is exactly the case where the consumer
/// stops early and the producers must detach without deadlocking.
#[test]
fn all_paths_agree_under_control_flow_divergence() {
    let config = KernelConfig::Cg(CgConfig {
        grid: 4,
        max_iters: 100,
        ..CgConfig::small()
    });
    let tol = 1e-1;
    let kernel = config.build();
    let inj = Injector::new(kernel.as_ref(), Classifier::new(tol));
    let mut diverging = 0;
    for site in 0..inj.n_sites() {
        let (_, prop) = inj.run_one_traced(site, 30);
        if prop.diverged {
            assert_paths_agree(&config, tol, site, 30);
            diverging += 1;
            if diverging >= 4 {
                break;
            }
        }
    }
    assert!(
        diverging > 0,
        "no diverging fault found to exercise the test"
    );
}

/// The site-never-reached edge case, at the trace level: a fault site
/// beyond the execution leaves `injected_err` unset and the propagation
/// window empty, identically on the buffered and streamed paths.
#[test]
fn buffered_and_streamed_agree_when_fault_site_is_never_reached() {
    let (config, _) = &tiny_suite()[4]; // matvec
    let kernel = config.build();
    let golden = kernel.golden();
    let compact = CompactGolden::from_golden(&golden);
    let fault = FaultSpec {
        site: golden.n_sites() + 7,
        bit: 1,
    };

    let buffered_run = kernel.run_injected(fault, RecordMode::Full);
    let buffered: Propagation = propagation(&golden, &buffered_run);

    let mut scratch = CompareScratch::new();
    let mut t = Tracer::comparing(fault, &compact, &mut scratch);
    let out = kernel.run(&mut t);
    let (streamed_run, window) = t.finish_compare(out);
    let streamed = streamed_propagation(fault.site, window, &scratch);

    assert_eq!(buffered, streamed);
    assert!(streamed.errors.is_empty());
    assert_eq!(buffered_run.injected_err, None);
    assert_eq!(streamed_run.injected_err, None);
    assert_eq!(buffered_run.output, streamed_run.output);
}

/// The full conformance matrix: every instrumented kernel in the tiny
/// suite × every extraction path × {1, 4, 8}-thread rayon pools yields
/// bit-identical experiment results. The reference cell is buffered
/// extraction under a serial pool; all eight other cells must reproduce
/// it exactly — this is the acceptance matrix for wiring the
/// previously-dormant kernels (lu, fft, spmv, stencil, matvec) into the
/// campaign stack. The bit axis is strided (every seventh bit plus the
/// sign and top exponent bits) so the 9-cell matrix stays affordable in
/// a debug run; full-bit-axis agreement is covered per path by
/// `exhaustive_outcome_tables_identical_across_paths` and the proptest.
#[test]
fn conformance_matrix_all_kernels_modes_and_pools() {
    let modes = [
        ExtractionMode::Buffered,
        ExtractionMode::Lockstep { capacity: 16 },
        ExtractionMode::Streamed,
    ];
    for (config, tol) in &tiny_suite() {
        let kernel = config.build();
        let probe = Injector::new(kernel.as_ref(), Classifier::new(*tol));
        let bits = probe.bits();
        let mut probe_bits: Vec<u8> = (0..bits).step_by(7).collect();
        probe_bits.extend([bits - 2, bits - 1]);
        probe_bits.dedup();
        let plan: Vec<FaultSpec> = (0..probe.n_sites())
            .flat_map(|site| probe_bits.iter().map(move |&bit| FaultSpec { site, bit }))
            .collect();
        assert!(!plan.is_empty(), "{config:?}: empty campaign");

        let cell = |mode: ExtractionMode, threads: usize| -> Vec<(u8, u64, u64)> {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            pool.install(|| {
                Injector::new(kernel.as_ref(), Classifier::new(*tol))
                    .with_extraction(mode)
                    .run_batch(&plan)
                    .iter()
                    .map(|e| {
                        (
                            e.outcome.code(),
                            e.injected_err.to_bits(),
                            e.output_err.to_bits(),
                        )
                    })
                    .collect()
            })
        };
        let reference = cell(ExtractionMode::Buffered, 1);
        for mode in modes {
            for threads in [1usize, 4, 8] {
                if mode == ExtractionMode::Buffered && threads == 1 {
                    continue;
                }
                let got = cell(mode, threads);
                assert_eq!(
                    reference, got,
                    "{config:?}: {mode:?} under a {threads}-thread pool \
                     diverged from serial buffered extraction"
                );
            }
        }
    }
}

/// Exhaustive three-way agreement on one small kernel: the whole
/// `sites × bits` outcome table is identical across paths (this is the
/// same assertion the CI benchmark smoke job makes on the bench suite).
#[test]
fn exhaustive_outcome_tables_identical_across_paths() {
    let (config, tol) = &tiny_suite()[4]; // matvec
    let kernel = config.build();
    let table = |mode: ExtractionMode| {
        Injector::new(kernel.as_ref(), Classifier::new(*tol))
            .with_extraction(mode)
            .run_exhaustive()
    };
    let buffered = table(ExtractionMode::Buffered);
    let streamed = table(ExtractionMode::Streamed);
    let lockstep = table(ExtractionMode::Lockstep { capacity: 8 });
    assert_eq!(buffered, streamed);
    assert_eq!(buffered, lockstep);
}
