//! End-to-end pipeline invariants across every kernel.

use ftb_core::prelude::*;
use ftb_integration::{tiny_suite, with_analysis};

#[test]
fn every_kernel_survives_the_full_pipeline() {
    for (config, tol) in tiny_suite() {
        with_analysis(&config, tol, |kernel, analysis| {
            let truth = analysis.exhaustive();
            let samples = analysis.sample_uniform(0.15, 3);
            let inference = analysis.infer(&samples, FilterMode::PerSite);
            let eval = analysis.evaluate(&inference.boundary, &truth);
            let unc = analysis.uncertainty(&inference.boundary, &samples);

            assert!(
                (0.0..=1.0).contains(&eval.precision),
                "{}: precision {}",
                kernel.name(),
                eval.precision
            );
            assert!((0.0..=1.0).contains(&eval.recall));
            assert!((0.0..=1.0).contains(&unc));
            assert!(
                eval.m_positive <= eval.m_predict && eval.m_positive <= eval.m_total,
                "{}: counting identity broken",
                kernel.name()
            );
            assert_eq!(eval.n_evaluated, truth.n_experiments());
        });
    }
}

#[test]
fn precision_stays_high_for_every_kernel() {
    for (config, tol) in tiny_suite() {
        with_analysis(&config, tol, |kernel, analysis| {
            let truth = analysis.exhaustive();
            let samples = analysis.sample_uniform(0.25, 11);
            let inference = analysis.infer(&samples, FilterMode::PerSite);
            let eval = analysis.evaluate(&inference.boundary, &truth);
            assert!(
                eval.precision > 0.90,
                "{}: precision {} below 90%",
                kernel.name(),
                eval.precision
            );
        });
    }
}

#[test]
fn uncertainty_tracks_precision() {
    // §4.3's headline: the self-verified uncertainty approximates the
    // true precision without any ground truth.
    for (config, tol) in tiny_suite() {
        with_analysis(&config, tol, |kernel, analysis| {
            let truth = analysis.exhaustive();
            let samples = analysis.sample_uniform(0.25, 13);
            let inference = analysis.infer(&samples, FilterMode::PerSite);
            let eval = analysis.evaluate(&inference.boundary, &truth);
            let unc = analysis.uncertainty(&inference.boundary, &samples);
            assert!(
                (unc - eval.precision).abs() < 0.10,
                "{}: uncertainty {unc} vs precision {} diverged",
                kernel.name(),
                eval.precision
            );
        });
    }
}

#[test]
fn more_samples_never_hurt_recall_much() {
    let (config, tol) = &tiny_suite()[3]; // stencil
    with_analysis(config, *tol, |_, analysis| {
        let truth = analysis.exhaustive();
        let mut last_recall = 0.0;
        for rate in [0.05, 0.15, 0.4] {
            let samples = analysis.sample_uniform(rate, 17);
            let inference = analysis.infer(&samples, FilterMode::PerSite);
            let eval = analysis.evaluate(&inference.boundary, &truth);
            assert!(
                eval.recall >= last_recall - 0.05,
                "recall regressed badly: {} after {last_recall}",
                eval.recall
            );
            last_recall = eval.recall;
        }
        assert!(last_recall > 0.3, "final recall {last_recall} too low");
    });
}

#[test]
fn golden_boundary_has_perfect_precision_on_monotone_kernels() {
    // stencil/matvec/gemm are §5-monotone: the exhaustive boundary should
    // classify their masked/SDC split essentially perfectly
    for idx in [3usize, 4, 5] {
        let (config, tol) = &tiny_suite()[idx];
        with_analysis(config, *tol, |kernel, analysis| {
            let truth = analysis.exhaustive();
            let gb = analysis.golden_boundary(&truth);
            let eval = analysis.evaluate(&gb, &truth);
            assert!(
                eval.precision > 0.999,
                "{}: golden-boundary precision {}",
                kernel.name(),
                eval.precision
            );
        });
    }
}

#[test]
fn overall_prediction_never_underestimates_sdc_materially() {
    // unknown cases are assumed SDC, so the predicted overall ratio sits
    // at or above the golden ratio (up to crash-prediction wobble)
    for (config, tol) in tiny_suite() {
        with_analysis(&config, tol, |kernel, analysis| {
            let truth = analysis.exhaustive();
            let samples = analysis.sample_uniform(0.10, 29);
            let inference = analysis.infer(&samples, FilterMode::PerSite);
            let predictor = analysis.predictor(&inference.boundary);
            let predicted = predictor.overall_sdc_ratio(Some(&samples));
            let golden = truth.overall_sdc_ratio();
            assert!(
                predicted >= golden - 0.03,
                "{}: predicted {predicted} < golden {golden}",
                kernel.name()
            );
        });
    }
}
