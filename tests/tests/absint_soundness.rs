//! Soundness and conservatism acceptance for the forward interval
//! analyzer: the forward envelope must contain the concrete golden run
//! regardless of thread pool or extraction mode, widening must only
//! grow intervals, and — the load-bearing property — no bit the
//! analyzer certifies as masked may be SDC or Crash in the exhaustive
//! ground truth, on any instrumented kernel. Ends with the bit-prune
//! differential: a pruned exhaustive campaign must be bit-identical to
//! the unpruned table on every non-certified cell, including across a
//! kill/resume of its ledger.

use ftb_core::prelude::*;
use ftb_inject::{
    exhaustive_plan, pruned_exhaustive_plan, BitPruneBinding, CampaignBinding, ChunkedCampaign,
};
use ftb_kernels::{
    CgConfig, CgKernel, FftConfig, FftKernel, GemmConfig, GemmKernel, JacobiConfig, JacobiKernel,
    Kernel, KernelConfig, LuConfig, LuKernel, MatvecConfig, MatvecKernel, SpmvConfig, SpmvKernel,
    StencilConfig, StencilKernel,
};
use ftb_trace::{GoldenRun, Precision};
use proptest::prelude::*;

fn jacobi_tiny() -> JacobiKernel {
    JacobiKernel::new(JacobiConfig {
        grid: 4,
        sweeps: 10,
        precision: Precision::F64,
        seed: 42,
        fine_grained: false,
        residual_every: 1,
        tweak: None,
    })
}

fn gemm_tiny() -> GemmKernel {
    GemmKernel::new(GemmConfig {
        n: 5,
        ..GemmConfig::small()
    })
}

fn cg_tiny() -> CgKernel {
    CgKernel::new(CgConfig {
        grid: 4,
        max_iters: 100,
        ..CgConfig::small()
    })
}

fn kernels() -> Vec<(Box<dyn Kernel>, f64)> {
    vec![
        (Box::new(jacobi_tiny()) as Box<dyn Kernel>, 1e-4),
        (Box::new(gemm_tiny()), 1e-6),
        (Box::new(cg_tiny()), 1e-1),
        (
            Box::new(LuKernel::new(LuConfig {
                n: 8,
                block: 4,
                ..LuConfig::small()
            })),
            3e-5,
        ),
        (
            Box::new(FftKernel::new(FftConfig {
                n1: 4,
                n2: 4,
                ..FftConfig::small()
            })),
            1.0,
        ),
        (
            Box::new(StencilKernel::new(StencilConfig {
                grid: 6,
                sweeps: 3,
                ..StencilConfig::small()
            })),
            1e-6,
        ),
        (
            Box::new(MatvecKernel::new(MatvecConfig {
                n: 6,
                ..MatvecConfig::small()
            })),
            1e-6,
        ),
        (
            Box::new(SpmvKernel::new(SpmvConfig {
                grid: 5,
                ..SpmvConfig::small()
            })),
            1e-6,
        ),
    ]
}

fn envelope(kernel: &dyn Kernel, widen: f64) -> (GoldenRun, ForwardIntervals) {
    let (golden, ddg) = kernel.golden_with_ddg();
    let fw = forward_pass(&ddg, &golden, &ForwardConfig { widen }).expect("forward pass");
    (golden, fw)
}

/// Soundness: every concrete golden value lies inside its forward
/// interval, for every instrumented kernel, under 1/4/8-thread rayon
/// pools and after exercising each extraction mode. The forward pass
/// reads only the DDG and the golden run, so nothing here may move.
#[test]
fn forward_envelope_contains_golden_across_threads_and_modes() {
    for (kernel, tolerance) in kernels() {
        let (golden, fw) = envelope(kernel.as_ref(), 0.0);
        assert_eq!(fw.n_sites(), golden.n_sites(), "{}", kernel.name());
        assert!(
            fw.contains_golden(&golden),
            "{}: golden escapes the forward envelope",
            kernel.name()
        );

        for threads in [1usize, 4, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let (g, f) = pool.install(|| envelope(kernel.as_ref(), 0.0));
            assert!(
                f.contains_golden(&g),
                "{}: envelope unsound under {threads}-thread pool",
                kernel.name()
            );
            // determinism rider: the envelope is a pure function of the
            // kernel config, bit for bit
            let bits_ref: Vec<(u64, u64)> = fw
                .intervals
                .iter()
                .map(|iv| (iv.lo().to_bits(), iv.hi().to_bits()))
                .collect();
            let bits_got: Vec<(u64, u64)> = f
                .intervals
                .iter()
                .map(|iv| (iv.lo().to_bits(), iv.hi().to_bits()))
                .collect();
            assert_eq!(
                bits_ref,
                bits_got,
                "{}: envelope drifts under {threads}-thread pool",
                kernel.name()
            );
        }

        for mode in [
            ExtractionMode::Buffered,
            ExtractionMode::Lockstep { capacity: 1024 },
            ExtractionMode::Streamed,
        ] {
            // extraction concerns faulty-run comparison; the golden
            // provenance pass the envelope is built from must be blind
            // to it
            let inj =
                Injector::new(kernel.as_ref(), Classifier::new(tolerance)).with_extraction(mode);
            let _ = inj.run_one(0, 1);
            let (g, f) = envelope(kernel.as_ref(), 0.0);
            assert!(
                f.contains_golden(&g),
                "{}: envelope unsound after {mode:?} extraction",
                kernel.name()
            );
        }
    }
}

/// Widening only grows intervals: a larger `widen` factor must produce
/// an envelope that encloses the tighter one site-for-site, and the
/// golden run stays inside at every level.
#[test]
fn widening_is_monotone() {
    for (kernel, _) in kernels() {
        let widths = [0.0, 0.25, 1.0, 4.0];
        let mut prev: Option<ForwardIntervals> = None;
        for &w in &widths {
            let (golden, fw) = envelope(kernel.as_ref(), w);
            assert!(
                fw.contains_golden(&golden),
                "{}: golden escapes at widen {w}",
                kernel.name()
            );
            if let Some(p) = &prev {
                assert!(
                    fw.max_width() >= p.max_width(),
                    "{}: max width shrank under widening",
                    kernel.name()
                );
                for (site, (narrow, wide)) in p.intervals.iter().zip(&fw.intervals).enumerate() {
                    assert!(
                        wide.encloses(*narrow),
                        "{}: site {site} interval shrank at widen {w}",
                        kernel.name()
                    );
                }
            }
            prev = Some(fw);
        }
    }
}

fn masks_for(kernel: &dyn Kernel, tolerance: f64) -> (GoldenRun, BitMasks) {
    let (golden, ddg) = kernel.golden_with_ddg();
    let sb = static_bound(&ddg, &StaticBoundConfig::new(tolerance)).expect("static bound");
    let fw = forward_pass(&ddg, &golden, &ForwardConfig { widen: 0.0 }).expect("forward pass");
    let masks = safe_bit_masks(&fw, &sb.boundary(), MaskSource::Static);
    (golden, masks)
}

/// The acceptance property: 100% conservative certification. Across
/// every instrumented kernel — jacobi, gemm, cg, lu, fft, stencil,
/// matvec and spmv — every bit classified `CertifiedMasked` must be
/// Masked in the exhaustive ground truth — zero SDC, zero Crash. The
/// test also demands each kernel certifies a non-trivial fraction so
/// the property is not vacuously true.
#[test]
fn certified_masked_bits_are_masked_in_exhaustive_truth() {
    for (kernel, tolerance) in kernels() {
        let (golden, masks) = masks_for(kernel.as_ref(), tolerance);
        assert!(
            masks.certified_total() > 0,
            "{}: nothing certified — vacuous",
            kernel.name()
        );

        let inj = Injector::with_golden(kernel.as_ref(), golden, Classifier::new(tolerance));
        let truth = inj.exhaustive();
        let mut checked = 0u64;
        for site in 0..masks.n_sites() {
            for bit in 0..masks.bits {
                if masks.class(site, bit) == BitClass::CertifiedMasked {
                    checked += 1;
                    let got = truth.outcome(site, bit);
                    assert!(
                        got.is_masked(),
                        "{}: certified bit (site {site}, bit {bit}) measured {got:?}",
                        kernel.name()
                    );
                }
            }
        }
        assert_eq!(checked, masks.certified_total(), "{}", kernel.name());
        println!(
            "{}: {} certified bits all masked ({:.2}x reduction)",
            kernel.name(),
            checked,
            masks.reduction_factor()
        );
    }
}

/// Bit-prune differential: the pruned exhaustive campaign agrees with
/// the unpruned table bit-for-bit on every non-certified cell, and the
/// certified cells it back-fills as Masked match the ground truth — so
/// the two boundaries are identical.
#[test]
fn pruned_campaign_matches_unpruned_on_non_certified_cells() {
    let kernel = jacobi_tiny();
    let tolerance = 1e-4;
    let (golden, masks) = masks_for(&kernel, tolerance);
    let certified = masks.certified_masks();
    let inj = Injector::with_golden(&kernel, golden, Classifier::new(tolerance));

    let truth = inj.exhaustive();
    let plan = pruned_exhaustive_plan(inj.n_sites(), inj.bits(), &certified);
    let full = exhaustive_plan(inj.n_sites(), inj.bits());
    assert!(
        plan.len() * 2 <= full.len(),
        "pruning removed under half the table: {} of {}",
        plan.len(),
        full.len()
    );

    let mut campaign = ChunkedCampaign::new(&inj, plan, 128);
    campaign.run_to_completion().unwrap();
    let pruned = campaign.into_exhaustive_with_certified(&certified);

    for site in 0..inj.n_sites() {
        for bit in 0..inj.bits() {
            let want = truth.outcome(site, bit);
            let got = pruned.outcome(site, bit);
            if masks.class(site, bit) == BitClass::CertifiedMasked {
                assert!(got.is_masked(), "certified cell ({site}, {bit}) not filled");
                assert_eq!(want, got, "certificate contradicted at ({site}, {bit})");
            } else {
                assert_eq!(want, got, "pruned run diverged at ({site}, {bit})");
            }
        }
    }
}

/// A pruned campaign killed mid-flight and resumed from its ledger must
/// finish with the identical experiment sequence, and a resume attempt
/// under drifted masks must be rejected by the binding.
#[test]
fn pruned_campaign_resumes_from_ledger() {
    let kernel = jacobi_tiny();
    let tolerance = 1e-4;
    let (golden, masks) = masks_for(&kernel, tolerance);
    let certified = masks.certified_masks();
    let inj = Injector::with_golden(&kernel, golden, Classifier::new(tolerance));
    let plan = pruned_exhaustive_plan(inj.n_sites(), inj.bits(), &certified);

    let binding = CampaignBinding {
        kernel: KernelConfig::Jacobi(JacobiConfig {
            grid: 4,
            sweeps: 10,
            precision: Precision::F64,
            seed: 42,
            fine_grained: false,
            residual_every: 1,
            tweak: None,
        }),
        classifier: *inj.classifier(),
        n_sites: inj.n_sites(),
        bits: inj.bits(),
        plan: "exhaustive bit-prune".to_string(),
        bit_prune: Some(BitPruneBinding {
            certified: masks.certified_total(),
            digest: masks.digest(),
        }),
        snapshot: None,
    };

    let dir = std::env::temp_dir().join("ftb-absint-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("pruned-resume.ledger");
    let _ = std::fs::remove_file(&path);

    // straight-through reference
    let mut reference = ChunkedCampaign::new(&inj, plan.clone(), 64);
    reference.run_to_completion().unwrap();
    let want: Vec<_> = reference.experiments().to_vec();

    // killed after two chunks, then resumed
    let mut first = ChunkedCampaign::new(&inj, plan.clone(), 64)
        .with_ledger(&path, binding.clone(), false)
        .unwrap();
    first.step().unwrap();
    first.step().unwrap();
    assert!(!first.is_done());
    drop(first);

    let mut resumed = ChunkedCampaign::new(&inj, plan.clone(), 64)
        .with_ledger(&path, binding.clone(), true)
        .unwrap();
    resumed.run_to_completion().unwrap();
    let got: Vec<_> = resumed.experiments().to_vec();
    assert_eq!(want, got, "resume changed the experiment sequence");

    // drifted masks (different digest) must not silently resume
    let drifted = CampaignBinding {
        bit_prune: Some(BitPruneBinding {
            certified: masks.certified_total(),
            digest: masks.digest() ^ 1,
        }),
        ..binding
    };
    let err = ChunkedCampaign::new(&inj, plan, 64)
        .with_ledger(&path, drifted, true)
        .err();
    assert!(
        err.is_some(),
        "drifted bit-prune binding accepted on resume"
    );

    let _ = std::fs::remove_file(&path);
}

proptest! {
    /// `Precision::flip` is an involution in both precisions: flipping
    /// the same bit twice restores the exact bit pattern of the
    /// quantised value.
    #[test]
    fn precision_flip_is_involution_f64(bits in any::<u64>(), bit in 0u8..64) {
        let v = f64::from_bits(bits);
        let back = Precision::F64.flip(Precision::F64.flip(v, bit), bit);
        prop_assert_eq!(back.to_bits(), v.to_bits());
    }

    /// The F32 path round-trips through `f64`, which is only exact for
    /// finite values (NaN payloads may be quieted by the conversion), so
    /// the property is stated over finite intermediates.
    #[test]
    fn precision_flip_is_involution_f32(v in -1e30f64..1e30, bit in 0u8..32) {
        let q = Precision::F32.quantize(v);
        let flipped = Precision::F32.flip(q, bit);
        if flipped.is_finite() {
            let back = Precision::F32.flip(flipped, bit);
            prop_assert_eq!(back.to_bits(), q.to_bits());
        }
    }

    /// Widening the interval domain directly: `expand` never shrinks and
    /// keeps every previously-contained point.
    #[test]
    fn interval_expand_is_monotone(
        lo in -1e12f64..1e12,
        w in 0.0f64..1e6,
        r in 0.0f64..1e6,
        p in 0.0f64..1.0,
    ) {
        let iv = Interval::new(lo, lo + w);
        let wide = iv.expand(r);
        prop_assert!(wide.encloses(iv));
        let point = lo + w * p;
        prop_assert!(iv.contains(point));
        prop_assert!(wide.contains(point));
    }
}
