//! Persistence: every campaign artifact survives a JSON round trip
//! unchanged (the disk cache and the CLI's `--json` output rely on this).

use ftb_core::prelude::*;
use ftb_integration::{tiny_suite, with_analysis};

#[test]
fn exhaustive_result_roundtrips() {
    let (config, tol) = &tiny_suite()[4];
    with_analysis(config, *tol, |_, analysis| {
        let ex = analysis.exhaustive();
        let json = serde_json::to_string(&ex).unwrap();
        let back: ftb_inject::ExhaustiveResult = serde_json::from_str(&json).unwrap();
        assert_eq!(ex, back);
    });
}

#[test]
fn sample_set_roundtrips_with_rebuilt_index() {
    let (config, tol) = &tiny_suite()[4];
    with_analysis(config, *tol, |_, analysis| {
        let samples = analysis.sample_uniform(0.2, 3);
        let json = serde_json::to_string(&samples).unwrap();
        let back: SampleSet = serde_json::from_str(&json).unwrap();
        assert_eq!(samples.experiments(), back.experiments());
        // the lookup index must be rebuilt, not silently dropped
        let e = &samples.experiments()[0];
        assert!(back.contains(e.site, e.bit));
        assert_eq!(back.get(e.site, e.bit).unwrap(), e);
    });
}

#[test]
fn boundary_and_inference_roundtrip() {
    let (config, tol) = &tiny_suite()[3];
    with_analysis(config, *tol, |_, analysis| {
        let samples = analysis.sample_uniform(0.2, 5);
        let inf = analysis.infer(&samples, FilterMode::PerSite);
        let json = serde_json::to_string(&inf).unwrap();
        let back: Inference = serde_json::from_str(&json).unwrap();
        assert_eq!(inf.boundary, back.boundary);
        assert_eq!(inf.prop_hits, back.prop_hits);
        assert_eq!(inf.sig_injections, back.sig_injections);
    });
}

#[test]
fn adaptive_result_roundtrips() {
    let (config, tol) = &tiny_suite()[5];
    with_analysis(config, *tol, |_, analysis| {
        let res = analysis.adaptive(&AdaptiveConfig::default());
        let json = serde_json::to_string(&res).unwrap();
        let back: AdaptiveResult = serde_json::from_str(&json).unwrap();
        assert_eq!(res.rounds, back.rounds);
        assert_eq!(res.samples.experiments(), back.samples.experiments());
        assert_eq!(res.inference.boundary, back.inference.boundary);
    });
}

#[test]
fn golden_run_roundtrips() {
    let (config, _) = &tiny_suite()[2];
    let golden = config.build().golden();
    let json = serde_json::to_string(&golden).unwrap();
    let back: ftb_trace::GoldenRun = serde_json::from_str(&json).unwrap();
    assert_eq!(golden, back);
}

#[test]
fn kernel_configs_roundtrip() {
    for (config, _) in tiny_suite() {
        let json = serde_json::to_string(&config).unwrap();
        let back: ftb_kernels::KernelConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(config, back);
    }
}
