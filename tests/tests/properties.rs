//! Property-based tests over the core data structures and invariants,
//! spanning crates.

use ftb_core::prelude::*;
use ftb_inject::{Experiment, Outcome};
use ftb_stats::Histogram;
use ftb_trace::bits::{flip_bit_f32, flip_bit_f64, injected_error, Precision};
use ftb_trace::divergence_cursor;
use proptest::prelude::*;

proptest! {
    /// Flipping any bit twice restores the exact bit pattern.
    #[test]
    fn flip_f64_is_involution(bits in any::<u64>(), bit in 0u8..64) {
        let v = f64::from_bits(bits);
        let back = flip_bit_f64(flip_bit_f64(v, bit), bit);
        prop_assert_eq!(back.to_bits(), v.to_bits());
    }

    /// Same for f32.
    #[test]
    fn flip_f32_is_involution(bits in any::<u32>(), bit in 0u8..32) {
        let v = f32::from_bits(bits);
        let back = flip_bit_f32(flip_bit_f32(v, bit), bit);
        prop_assert_eq!(back.to_bits(), v.to_bits());
    }

    /// A flip never leaves the value unchanged as a bit pattern, and the
    /// injected error is non-negative (possibly +inf, possibly 0 only for
    /// the sign flip of a zero or flips involving NaN payloads).
    #[test]
    fn injected_error_is_nonnegative(v in -1e30f64..1e30, bit in 0u8..64) {
        let e = injected_error(Precision::F64, v, bit);
        prop_assert!(e >= 0.0);
    }

    /// Boundary merge is commutative: max-fold order cannot matter.
    #[test]
    fn boundary_merge_commutes(
        a in proptest::collection::vec(0.0f64..1e6, 1..40),
        b in proptest::collection::vec(0.0f64..1e6, 1..40),
    ) {
        let n = a.len().min(b.len());
        let mut x = Boundary::zero(n);
        let mut y = Boundary::zero(n);
        for (i, &v) in a.iter().take(n).enumerate() {
            x.observe(i, v);
        }
        for (i, &v) in b.iter().take(n).enumerate() {
            y.observe(i, v);
        }
        let mut xy = x.clone();
        xy.merge(&y);
        let mut yx = y.clone();
        yx.merge(&x);
        prop_assert_eq!(xy, yx);
    }

    /// Observing extra propagation data never lowers any threshold
    /// (Algorithm 1 is a running max).
    #[test]
    fn observe_is_monotone(
        base in proptest::collection::vec((0usize..20, 0.0f64..1e9), 0..50),
        extra in proptest::collection::vec((0usize..20, 0.0f64..1e9), 0..50),
    ) {
        let mut b1 = Boundary::zero(20);
        for &(s, v) in &base {
            b1.observe(s, v);
        }
        let mut b2 = b1.clone();
        for &(s, v) in &extra {
            b2.observe(s, v);
        }
        for s in 0..20 {
            prop_assert!(b2.threshold(s) >= b1.threshold(s));
        }
    }

    /// Identical branch streams never diverge; an injected mismatch is
    /// found at (or before) its position.
    #[test]
    fn divergence_detects_mutation(
        stream in proptest::collection::vec(0u64..1000, 1..100),
        idx in 0usize..100,
    ) {
        let idx = idx % stream.len();
        let encoded: Vec<u64> = stream
            .iter()
            .enumerate()
            .map(|(i, &c)| ((c + i as u64) << 1) | 1)
            .collect();
        prop_assert_eq!(divergence_cursor(&encoded, &encoded), None);
        let mut mutated = encoded.clone();
        mutated[idx] ^= 1; // flip the taken bit
        let d = divergence_cursor(&encoded, &mutated);
        prop_assert!(d.is_some());
        prop_assert!(d.unwrap() <= ((encoded[idx] >> 1) as usize));
    }

    /// The §3.5 filter (incremental form) never raises a threshold: after
    /// `clamp_below(site, cap)` every threshold is no higher than before,
    /// and any site clamped with a finite cap sits strictly below it.
    #[test]
    fn filter_never_raises_thresholds(
        obs in proptest::collection::vec((0usize..20, 0.0f64..1e9), 0..60),
        caps in proptest::collection::vec((0usize..20, 1e-12f64..1e9), 0..40),
    ) {
        let mut b = Boundary::zero(20);
        for &(s, v) in &obs {
            b.observe(s, v);
        }
        let before = b.clone();
        for &(s, cap) in &caps {
            b.clamp_below(s, cap);
        }
        for s in 0..20 {
            prop_assert!(b.threshold(s) <= before.threshold(s), "filter raised site {}", s);
        }
        for &(s, cap) in &caps {
            prop_assert!(b.threshold(s) < cap, "site {} not below its SDC cap", s);
        }
    }

    /// Seeding with a zero prior is the identity, exactly (bit-for-bit).
    #[test]
    fn merge_zero_prior_is_identity(
        obs in proptest::collection::vec((0usize..20, 0.0f64..1e9), 0..60),
    ) {
        let mut b = Boundary::zero(20);
        for &(s, v) in &obs {
            b.observe(s, v);
        }
        let before = b.clone();
        b.merge_prior(&Boundary::zero(20));
        prop_assert_eq!(b, before);
    }

    /// A prior can only add knowledge: merge_prior never lowers any
    /// threshold and never drops support, and the result dominates both
    /// inputs pointwise.
    #[test]
    fn merge_prior_never_lowers(
        obs in proptest::collection::vec((0usize..20, 0.0f64..1e9), 0..60),
        prior_t in proptest::collection::vec(0.0f64..1e9, 20..21),
    ) {
        let mut b = Boundary::zero(20);
        for &(s, v) in &obs {
            b.observe(s, v);
        }
        let before = b.clone();
        let prior = Boundary::from_thresholds(prior_t);
        b.merge_prior(&prior);
        for s in 0..20 {
            prop_assert!(b.threshold(s) >= before.threshold(s));
            prop_assert!(b.threshold(s) >= prior.threshold(s));
            prop_assert_eq!(
                b.threshold(s),
                before.threshold(s).max(prior.threshold(s))
            );
            prop_assert!(b.support(s) >= before.support(s));
        }
    }

    /// Histograms never lose finite observations.
    #[test]
    fn histogram_conserves_mass(xs in proptest::collection::vec(-1e12f64..1e12, 0..200)) {
        let h = Histogram::auto(&xs, 16);
        prop_assert_eq!(h.total() as usize, xs.len());
        prop_assert_eq!(h.counts().iter().sum::<u64>(), h.total());
    }

    /// SampleSet statistics are consistent with its contents for any
    /// experiment soup.
    #[test]
    fn sample_set_counting_identities(
        exps in proptest::collection::vec(
            (0usize..30, 0u8..64, 0u8..3, 0.0f64..1e3),
            0..120,
        )
    ) {
        let mut set = SampleSet::new();
        for (site, bit, kind, err) in exps {
            let outcome = match kind {
                0 => Outcome::Masked,
                1 => Outcome::Sdc,
                _ => Outcome::Crash(ftb_inject::CrashKind::NonFinite),
            };
            set.insert(Experiment {
                site,
                bit,
                injected_err: err,
                output_err: 0.0,
                outcome,
            });
        }
        let (m, s, c) = set.counts();
        prop_assert_eq!(m + s + c, set.len());
        let mins = set.min_sdc_injected(30);
        for e in set.sdc() {
            prop_assert!(mins[e.site] <= e.injected_err);
        }
        let global = set.min_sdc_injected_global();
        for &site_min in &mins {
            prop_assert!(global <= site_min);
        }
        let inj = set.injection_counts(30);
        prop_assert_eq!(inj.iter().map(|&x| x as usize).sum::<usize>(), set.len());
        prop_assert!(set.distinct_sites() <= set.len());
    }
}
