//! Property-based tests over the core data structures and invariants,
//! spanning crates.

use ftb_core::prelude::*;
use ftb_inject::{Experiment, Outcome};
use ftb_stats::Histogram;
use ftb_trace::bits::{flip_bit_f32, flip_bit_f64, injected_error, Precision};
use ftb_trace::divergence_cursor;
use proptest::prelude::*;

proptest! {
    /// Flipping any bit twice restores the exact bit pattern.
    #[test]
    fn flip_f64_is_involution(bits in any::<u64>(), bit in 0u8..64) {
        let v = f64::from_bits(bits);
        let back = flip_bit_f64(flip_bit_f64(v, bit), bit);
        prop_assert_eq!(back.to_bits(), v.to_bits());
    }

    /// Same for f32.
    #[test]
    fn flip_f32_is_involution(bits in any::<u32>(), bit in 0u8..32) {
        let v = f32::from_bits(bits);
        let back = flip_bit_f32(flip_bit_f32(v, bit), bit);
        prop_assert_eq!(back.to_bits(), v.to_bits());
    }

    /// A flip never leaves the value unchanged as a bit pattern, and the
    /// injected error is non-negative (possibly +inf, possibly 0 only for
    /// the sign flip of a zero or flips involving NaN payloads).
    #[test]
    fn injected_error_is_nonnegative(v in -1e30f64..1e30, bit in 0u8..64) {
        let e = injected_error(Precision::F64, v, bit);
        prop_assert!(e >= 0.0);
    }

    /// Boundary merge is commutative: max-fold order cannot matter.
    #[test]
    fn boundary_merge_commutes(
        a in proptest::collection::vec(0.0f64..1e6, 1..40),
        b in proptest::collection::vec(0.0f64..1e6, 1..40),
    ) {
        let n = a.len().min(b.len());
        let mut x = Boundary::zero(n);
        let mut y = Boundary::zero(n);
        for (i, &v) in a.iter().take(n).enumerate() {
            x.observe(i, v);
        }
        for (i, &v) in b.iter().take(n).enumerate() {
            y.observe(i, v);
        }
        let mut xy = x.clone();
        xy.merge(&y);
        let mut yx = y.clone();
        yx.merge(&x);
        prop_assert_eq!(xy, yx);
    }

    /// Observing extra propagation data never lowers any threshold
    /// (Algorithm 1 is a running max).
    #[test]
    fn observe_is_monotone(
        base in proptest::collection::vec((0usize..20, 0.0f64..1e9), 0..50),
        extra in proptest::collection::vec((0usize..20, 0.0f64..1e9), 0..50),
    ) {
        let mut b1 = Boundary::zero(20);
        for &(s, v) in &base {
            b1.observe(s, v);
        }
        let mut b2 = b1.clone();
        for &(s, v) in &extra {
            b2.observe(s, v);
        }
        for s in 0..20 {
            prop_assert!(b2.threshold(s) >= b1.threshold(s));
        }
    }

    /// Identical branch streams never diverge; an injected mismatch is
    /// found at (or before) its position.
    #[test]
    fn divergence_detects_mutation(
        stream in proptest::collection::vec(0u64..1000, 1..100),
        idx in 0usize..100,
    ) {
        let idx = idx % stream.len();
        let encoded: Vec<u64> = stream
            .iter()
            .enumerate()
            .map(|(i, &c)| ((c + i as u64) << 1) | 1)
            .collect();
        prop_assert_eq!(divergence_cursor(&encoded, &encoded), None);
        let mut mutated = encoded.clone();
        mutated[idx] ^= 1; // flip the taken bit
        let d = divergence_cursor(&encoded, &mutated);
        prop_assert!(d.is_some());
        prop_assert!(d.unwrap() <= ((encoded[idx] >> 1) as usize));
    }

    /// The §3.5 filter (incremental form) never raises a threshold: after
    /// `clamp_below(site, cap)` every threshold is no higher than before,
    /// and any site clamped with a finite cap sits strictly below it.
    #[test]
    fn filter_never_raises_thresholds(
        obs in proptest::collection::vec((0usize..20, 0.0f64..1e9), 0..60),
        caps in proptest::collection::vec((0usize..20, 1e-12f64..1e9), 0..40),
    ) {
        let mut b = Boundary::zero(20);
        for &(s, v) in &obs {
            b.observe(s, v);
        }
        let before = b.clone();
        for &(s, cap) in &caps {
            b.clamp_below(s, cap);
        }
        for s in 0..20 {
            prop_assert!(b.threshold(s) <= before.threshold(s), "filter raised site {}", s);
        }
        for &(s, cap) in &caps {
            prop_assert!(b.threshold(s) < cap, "site {} not below its SDC cap", s);
        }
    }

    /// Seeding with a zero prior is the identity, exactly (bit-for-bit).
    #[test]
    fn merge_zero_prior_is_identity(
        obs in proptest::collection::vec((0usize..20, 0.0f64..1e9), 0..60),
    ) {
        let mut b = Boundary::zero(20);
        for &(s, v) in &obs {
            b.observe(s, v);
        }
        let before = b.clone();
        b.merge_prior(&Boundary::zero(20));
        prop_assert_eq!(b, before);
    }

    /// A prior can only add knowledge: merge_prior never lowers any
    /// threshold and never drops support, and the result dominates both
    /// inputs pointwise.
    #[test]
    fn merge_prior_never_lowers(
        obs in proptest::collection::vec((0usize..20, 0.0f64..1e9), 0..60),
        prior_t in proptest::collection::vec(0.0f64..1e9, 20..21),
    ) {
        let mut b = Boundary::zero(20);
        for &(s, v) in &obs {
            b.observe(s, v);
        }
        let before = b.clone();
        let prior = Boundary::from_thresholds(prior_t);
        b.merge_prior(&prior);
        for s in 0..20 {
            prop_assert!(b.threshold(s) >= before.threshold(s));
            prop_assert!(b.threshold(s) >= prior.threshold(s));
            prop_assert_eq!(
                b.threshold(s),
                before.threshold(s).max(prior.threshold(s))
            );
            prop_assert!(b.support(s) >= before.support(s));
        }
    }

    /// Histograms never lose finite observations.
    #[test]
    fn histogram_conserves_mass(xs in proptest::collection::vec(-1e12f64..1e12, 0..200)) {
        let h = Histogram::auto(&xs, 16);
        prop_assert_eq!(h.total() as usize, xs.len());
        prop_assert_eq!(h.counts().iter().sum::<u64>(), h.total());
    }

    /// SampleSet statistics are consistent with its contents for any
    /// experiment soup.
    #[test]
    fn sample_set_counting_identities(
        exps in proptest::collection::vec(
            (0usize..30, 0u8..64, 0u8..3, 0.0f64..1e3),
            0..120,
        )
    ) {
        let mut set = SampleSet::new();
        for (site, bit, kind, err) in exps {
            let outcome = match kind {
                0 => Outcome::Masked,
                1 => Outcome::Sdc,
                _ => Outcome::Crash(ftb_inject::CrashKind::NonFinite),
            };
            set.insert(Experiment {
                site,
                bit,
                injected_err: err,
                output_err: 0.0,
                outcome,
            });
        }
        let (m, s, c) = set.counts();
        prop_assert_eq!(m + s + c, set.len());
        let mins = set.min_sdc_injected(30);
        for e in set.sdc() {
            prop_assert!(mins[e.site] <= e.injected_err);
        }
        let global = set.min_sdc_injected_global();
        for &site_min in &mins {
            prop_assert!(global <= site_min);
        }
        let inj = set.injection_counts(30);
        prop_assert_eq!(inj.iter().map(|&x| x as usize).sum::<usize>(), set.len());
        prop_assert!(set.distinct_sites() <= set.len());
    }
}

// ---------------------------------------------------------------------------
// Compositional-analysis properties: the backward sweep is pure arithmetic
// over transfer summaries, so its contracts are checkable without kernels.

use ftb_core::{compose_thresholds, ComposeParams, SectionDag};
use ftb_inject::SectionSummary;

/// Per-site generator payload: (local_max, raw site_amp, raw min_sdc).
type SiteGen = (f64, f64, f64);
/// Per-section payload: sites, amp_in, cap_in, raw min_sdc_in, and the
/// worsening factors (amp_mul, cap_mul, sdc_mul, loc_mul, site_amp_mul).
type SectionGen = (Vec<SiteGen>, f64, f64, f64, (f64, f64, f64, f64, f64));

/// Raw SDC selectors below 3 mean "no SDC observed" (infinite floor);
/// the rest land in [3e-4, 1e-3], commensurate with the local folds.
fn sdc_of(raw: f64) -> f64 {
    if raw < 3.0 {
        f64::INFINITY
    } else {
        raw * 1e-4
    }
}

/// Build a chain of summaries over contiguous site ranges. Raw site
/// amplifications below 1 mean "never reached the frontier" (zero).
fn chain_summaries(secs: &[SectionGen]) -> Vec<SectionSummary> {
    let mut lo = 0usize;
    secs.iter()
        .enumerate()
        .map(|(t, (sites, amp_in, cap_in, sdc_in, _))| {
            let hi = lo + sites.len();
            let s = SectionSummary {
                index: t,
                lo,
                hi,
                n_experiments: 1,
                local_max: sites.iter().map(|&(l, _, _)| l).collect(),
                min_sdc: sites.iter().map(|&(_, _, m)| sdc_of(m)).collect(),
                site_amp: sites
                    .iter()
                    .map(|&(_, a, _)| if a < 1.0 { 0.0 } else { a })
                    .collect(),
                amp_in: *amp_in,
                cap_in: *cap_in,
                min_sdc_in: sdc_of(*sdc_in),
                slot_amp: vec![],
                static_amp: vec![],
            };
            lo = hi;
            s
        })
        .collect()
}

fn compose_params() -> ComposeParams {
    ComposeParams {
        tolerance: 1e-4,
        safety: 1.0,
        extrapolate: true,
    }
}

proptest! {
    /// Worsening any summary — larger amplifications, smaller masked
    /// caps, smaller SDC floors, smaller local folds — never loosens any
    /// composed threshold: composition is monotone in summary tightness.
    #[test]
    fn composition_is_monotone_in_summary_tightness(
        secs in proptest::collection::vec(
            (
                proptest::collection::vec(
                    (0.0f64..1e-3, 0.0f64..8.0, 0.0f64..10.0),
                    1..4,
                ),
                0.0f64..8.0,
                0.0f64..2.0,
                0.0f64..10.0,
                (1.0f64..4.0, 0.1f64..1.0, 0.1f64..1.0, 0.1f64..1.0, 1.0f64..4.0),
            ),
            1..5,
        )
    ) {
        let base = chain_summaries(&secs);
        let worse: Vec<SectionSummary> = base
            .iter()
            .zip(&secs)
            .map(|(s, (_, _, _, _, (amp_mul, cap_mul, sdc_mul, loc_mul, samp_mul)))| {
                let mut w = s.clone();
                w.amp_in *= amp_mul;
                w.cap_in *= cap_mul;
                w.min_sdc_in *= sdc_mul; // infinities stay infinite
                for v in &mut w.local_max {
                    *v *= loc_mul;
                }
                for v in &mut w.min_sdc {
                    *v *= sdc_mul;
                }
                for v in &mut w.site_amp {
                    *v *= samp_mul; // zeros (unreached) stay zero
                }
                w
            })
            .collect();
        let n = base.last().map_or(0, |s| s.hi);
        let dag = SectionDag::chain(base.len());
        let a = compose_thresholds(&base, &dag, n, &compose_params());
        let b = compose_thresholds(&worse, &dag, n, &compose_params());
        for site in 0..n {
            prop_assert!(
                b.thresholds[site] <= a.thresholds[site],
                "worsened summaries loosened site {}: {} > {}",
                site, b.thresholds[site], a.thresholds[site]
            );
        }
        for t in 0..base.len() {
            prop_assert!(b.budgets[t] <= a.budgets[t], "budget {} loosened", t);
        }
    }

    /// Independent (mutually unordered) sections compose order-invariantly:
    /// relabeling the terminal fan of a summary DAG changes no threshold
    /// and no shared-ancestor budget, bit for bit.
    #[test]
    fn composition_is_order_invariant_for_independent_sections(
        secs in proptest::collection::vec(
            (
                proptest::collection::vec(
                    (0.0f64..1e-3, 0.0f64..8.0, 0.0f64..10.0),
                    1..4,
                ),
                0.0f64..8.0,
                0.0f64..2.0,
                0.0f64..10.0,
                (1.0f64..1.1, 1.0f64..1.1, 1.0f64..1.1, 1.0f64..1.1, 1.0f64..1.1),
            ),
            3..6, // section 0 + at least two independent successors
        )
    ) {
        let summaries = chain_summaries(&secs);
        let n = summaries.last().map_or(0, |s| s.hi);
        let m = summaries.len();
        // fan: section 0 feeds every other section; 1..m are terminal
        // and independent of each other
        let fan = SectionDag {
            succs: std::iter::once((1..m).collect::<Vec<_>>())
                .chain((1..m).map(|_| vec![]))
                .collect(),
        };
        let a = compose_thresholds(&summaries, &fan, n, &compose_params());

        // relabel the independent fan: reverse sections 1..m (each keeps
        // its own site range), successor list follows the relabeling
        let mut relabeled = vec![summaries[0].clone()];
        relabeled.extend(summaries[1..].iter().rev().cloned());
        let b = compose_thresholds(&relabeled, &fan, n, &compose_params());

        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        prop_assert_eq!(bits(&a.thresholds), bits(&b.thresholds));
        prop_assert_eq!(a.budgets[0].to_bits(), b.budgets[0].to_bits());
        prop_assert_eq!(a.extrapolated, b.extrapolated);
    }
}

/// Degeneration: analyzing the whole program as one section with
/// extrapolation off reproduces the monolithic Algorithm-1 inference —
/// same experiments in, bit-identical thresholds out.
#[test]
fn single_whole_program_section_reproduces_monolithic_inference() {
    use ftb_inject::{run_section_campaign, Classifier, Injector, SectionCampaignConfig};
    use ftb_trace::SectionMap;

    let (config, tol) = ftb_integration::tiny_suite()
        .into_iter()
        .find(|(k, _)| k.name() == "jacobi")
        .unwrap();
    let kernel = config.build();
    let inj = Injector::new(kernel.as_ref(), Classifier::new(tol));
    let registry = kernel.registry();
    let map = SectionMap::whole(inj.n_sites());
    let campaign = run_section_campaign(
        &inj,
        &registry,
        &map,
        0,
        &SectionCampaignConfig::new(0.4, 41),
    );

    let composed = compose_thresholds(
        std::slice::from_ref(&campaign.summary),
        &SectionDag::chain(1),
        inj.n_sites(),
        &ComposeParams {
            tolerance: tol,
            safety: 1.0,
            extrapolate: false,
        },
    );

    let mut samples = SampleSet::new();
    for e in &campaign.local_experiments {
        samples.insert(*e);
    }
    let inferred = infer_boundary(&inj, &samples, FilterMode::PerSite);
    for site in 0..inj.n_sites() {
        assert_eq!(
            composed.thresholds[site].to_bits(),
            inferred.boundary.threshold(site).to_bits(),
            "site {site}: composed {} vs inferred {}",
            composed.thresholds[site],
            inferred.boundary.threshold(site),
        );
    }
}
