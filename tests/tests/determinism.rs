//! Reproducibility: identical seeds give identical campaigns, boundaries
//! and adaptive trajectories — including under different Rayon pool
//! sizes, since the parallel reductions are order-independent.

use ftb_core::prelude::*;
use ftb_integration::{tiny_suite, with_analysis};

#[test]
fn sampled_campaigns_are_reproducible() {
    let (config, tol) = &tiny_suite()[4]; // matvec
    with_analysis(config, *tol, |_, analysis| {
        let a = analysis.sample_uniform(0.2, 7);
        let b = analysis.sample_uniform(0.2, 7);
        assert_eq!(a.experiments(), b.experiments());
        let c = analysis.sample_uniform(0.2, 8);
        assert_ne!(a.experiments(), c.experiments());
    });
}

#[test]
fn inference_identical_across_thread_counts() {
    let (config, tol) = &tiny_suite()[3]; // stencil
    let kernel = config.build();

    let run_with_pool = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        pool.install(|| {
            let analysis = Analysis::new(kernel.as_ref(), Classifier::new(*tol));
            let samples = analysis.sample_uniform(0.2, 5);
            let inference = analysis.infer(&samples, FilterMode::PerSite);
            (samples, inference)
        })
    };

    let (s1, i1) = run_with_pool(1);
    let (s4, i4) = run_with_pool(4);
    assert_eq!(s1.experiments(), s4.experiments());
    assert_eq!(i1.boundary, i4.boundary);
    assert_eq!(i1.prop_hits, i4.prop_hits);
    assert_eq!(i1.sig_injections, i4.sig_injections);
}

#[test]
fn exhaustive_campaign_identical_across_thread_counts() {
    let (config, tol) = &tiny_suite()[5]; // gemm
    let kernel = config.build();
    let run_with_pool = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        pool.install(|| Analysis::new(kernel.as_ref(), Classifier::new(*tol)).exhaustive())
    };
    assert_eq!(run_with_pool(1), run_with_pool(3));
}

/// The streamed extraction path keeps per-worker scratch in
/// thread-locals; boundary inference over it must still be independent
/// of how Rayon schedules experiments onto workers.
#[test]
fn streamed_inference_identical_across_thread_counts() {
    let (config, tol) = &tiny_suite()[7]; // jacobi
    let kernel = config.build();

    let run_with_pool = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        pool.install(|| {
            let analysis = Analysis::new(kernel.as_ref(), Classifier::new(*tol))
                .with_extraction(ExtractionMode::Streamed);
            let samples = analysis.sample_uniform(0.2, 11);
            let inference = analysis.infer(&samples, FilterMode::PerSite);
            (samples, inference, analysis.exhaustive())
        })
    };

    let (s1, i1, e1) = run_with_pool(1);
    let (s2, i2, e2) = run_with_pool(2);
    let (s8, i8, e8) = run_with_pool(8);
    assert_eq!(s1.experiments(), s2.experiments());
    assert_eq!(s1.experiments(), s8.experiments());
    assert_eq!(i1.boundary, i2.boundary);
    assert_eq!(i1.boundary, i8.boundary);
    assert_eq!(i1.prop_hits, i8.prop_hits);
    assert_eq!(i1.sig_injections, i8.sig_injections);
    assert_eq!(e1, e2);
    assert_eq!(e1, e8);
}

/// `RAYON_NUM_THREADS` shapes the default pool size, and results do not
/// depend on it.
#[test]
fn rayon_num_threads_env_is_honoured_and_benign() {
    let (config, tol) = &tiny_suite()[4]; // matvec
    let kernel = config.build();
    let infer = || {
        let analysis = Analysis::new(kernel.as_ref(), Classifier::new(*tol))
            .with_extraction(ExtractionMode::Streamed);
        let samples = analysis.sample_uniform(0.3, 13);
        analysis.infer(&samples, FilterMode::PerSite)
    };

    let baseline = infer();
    std::env::set_var("RAYON_NUM_THREADS", "3");
    assert_eq!(rayon::current_num_threads(), 3);
    let under_env = infer();
    std::env::remove_var("RAYON_NUM_THREADS");
    assert_eq!(baseline.boundary, under_env.boundary);
    assert_eq!(baseline.prop_hits, under_env.prop_hits);
}

#[test]
fn adaptive_trajectory_is_reproducible() {
    let (config, tol) = &tiny_suite()[4];
    with_analysis(config, *tol, |_, analysis| {
        let cfg = AdaptiveConfig {
            seed: 9,
            ..Default::default()
        };
        let a = analysis.adaptive(&cfg);
        let b = analysis.adaptive(&cfg);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.samples.experiments(), b.samples.experiments());
        assert_eq!(a.inference.boundary, b.inference.boundary);
    });
}

/// The serial-vs-parallel characterization itself: for the acceptance
/// trio (lu, fft, stencil) the per-site outcome distributions under
/// 1-, 4- and 8-thread pools must be indistinguishable — every pairwise
/// total-variation distance exactly zero, `deterministic` set. This is
/// the same artifact `ftb analyze characterize` gates in CI.
#[test]
fn characterize_reports_zero_tvd_across_pools() {
    for idx in [1usize, 2, 3] {
        // lu, fft, stencil
        let (config, tol) = &tiny_suite()[idx];
        let kernel = config.build();
        let inj = ftb_inject::Injector::new(kernel.as_ref(), Classifier::new(*tol));
        let report = ftb_inject::characterize(&inj, &[1, 4, 8]);
        assert_eq!(report.thread_counts, vec![1, 4, 8], "{config:?}");
        assert_eq!(report.runs.len(), 3, "{config:?}");
        assert_eq!(report.pairs.len(), 3, "{config:?}: 1↔4, 1↔8, 4↔8");
        assert!(
            report.deterministic,
            "{config:?}: outcome distribution depends on pool size"
        );
        for pair in &report.pairs {
            assert_eq!(
                pair.max_tvd, 0.0,
                "{config:?}: {} vs {} threads diverge at site {:?}",
                pair.threads_a, pair.threads_b, pair.worst_site
            );
            assert_eq!(pair.diverging_sites, 0, "{config:?}");
        }
        // the histograms really partition the whole experiment space
        for run in &report.runs {
            assert_eq!(run.histograms.len(), report.n_sites, "{config:?}");
            assert_eq!(
                run.masked + run.sdc + run.crash,
                report.n_experiments,
                "{config:?}"
            );
        }
    }
}

#[test]
fn golden_runs_identical_across_rebuilds() {
    for (config, _) in tiny_suite() {
        let g1 = config.build().golden();
        let g2 = config.build().golden();
        assert_eq!(g1.values, g2.values);
        assert_eq!(g1.branches, g2.branches);
        assert_eq!(g1.output, g2.output);
    }
}
