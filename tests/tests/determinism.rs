//! Reproducibility: identical seeds give identical campaigns, boundaries
//! and adaptive trajectories — including under different Rayon pool
//! sizes, since the parallel reductions are order-independent.

use ftb_core::prelude::*;
use ftb_integration::{tiny_suite, with_analysis};

#[test]
fn sampled_campaigns_are_reproducible() {
    let (config, tol) = &tiny_suite()[4]; // matvec
    with_analysis(config, *tol, |_, analysis| {
        let a = analysis.sample_uniform(0.2, 7);
        let b = analysis.sample_uniform(0.2, 7);
        assert_eq!(a.experiments(), b.experiments());
        let c = analysis.sample_uniform(0.2, 8);
        assert_ne!(a.experiments(), c.experiments());
    });
}

#[test]
fn inference_identical_across_thread_counts() {
    let (config, tol) = &tiny_suite()[3]; // stencil
    let kernel = config.build();

    let run_with_pool = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        pool.install(|| {
            let analysis = Analysis::new(kernel.as_ref(), Classifier::new(*tol));
            let samples = analysis.sample_uniform(0.2, 5);
            let inference = analysis.infer(&samples, FilterMode::PerSite);
            (samples, inference)
        })
    };

    let (s1, i1) = run_with_pool(1);
    let (s4, i4) = run_with_pool(4);
    assert_eq!(s1.experiments(), s4.experiments());
    assert_eq!(i1.boundary, i4.boundary);
    assert_eq!(i1.prop_hits, i4.prop_hits);
    assert_eq!(i1.sig_injections, i4.sig_injections);
}

#[test]
fn exhaustive_campaign_identical_across_thread_counts() {
    let (config, tol) = &tiny_suite()[5]; // gemm
    let kernel = config.build();
    let run_with_pool = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        pool.install(|| Analysis::new(kernel.as_ref(), Classifier::new(*tol)).exhaustive())
    };
    assert_eq!(run_with_pool(1), run_with_pool(3));
}

#[test]
fn adaptive_trajectory_is_reproducible() {
    let (config, tol) = &tiny_suite()[4];
    with_analysis(config, *tol, |_, analysis| {
        let cfg = AdaptiveConfig {
            seed: 9,
            ..Default::default()
        };
        let a = analysis.adaptive(&cfg);
        let b = analysis.adaptive(&cfg);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.samples.experiments(), b.samples.experiments());
        assert_eq!(a.inference.boundary, b.inference.boundary);
    });
}

#[test]
fn golden_runs_identical_across_rebuilds() {
    for (config, _) in tiny_suite() {
        let g1 = config.build().golden();
        let g2 = config.build().golden();
        assert_eq!(g1.values, g2.values);
        assert_eq!(g1.branches, g2.branches);
        assert_eq!(g1.output, g2.output);
    }
}
