//! Property tests for the section-segmentation heuristic on the kernels
//! whose phase structure comes from `phase_head` marks (LU block steps,
//! FFT six-step stages) rather than reduction monitors.
//!
//! The compositional analysis persists section signatures in ledgers and
//! re-uses per-section campaigns across runs, so segmentation must be a
//! pure function of the kernel *configuration*: the same config must
//! never split or reorder sections across rebuilds, input seeds (the
//! control flow is data-independent — LU does not pivot), or rayon pool
//! sizes.

use ftb_kernels::{FftConfig, FftKernel, Kernel, LuConfig, LuKernel};
use ftb_trace::{Precision, SectionMap};
use proptest::prelude::*;

/// Valid `(n, block)` LU shapes (block must divide n).
const LU_SHAPES: [(usize, usize); 6] = [(4, 2), (4, 4), (6, 2), (6, 3), (8, 2), (8, 4)];

fn lu(n: usize, block: usize, seed: u64) -> LuKernel {
    LuKernel::new(LuConfig {
        n,
        block,
        precision: Precision::F64,
        seed,
    })
}

fn fft(n1: usize, n2: usize, seed: u64) -> FftKernel {
    FftKernel::new(FftConfig {
        n1,
        n2,
        precision: Precision::F64,
        seed,
    })
}

fn segment(kernel: &dyn Kernel) -> SectionMap {
    SectionMap::phases(&kernel.golden(), &kernel.registry())
}

/// Structural sanity: a segmentation is a partition of `0..n_sites`
/// into non-empty contiguous ranges in increasing site order.
fn assert_well_formed(map: &SectionMap, kernel: &dyn Kernel) {
    assert!(map.n_sections() > 0, "{}", kernel.name());
    assert_eq!(map.range(0).0, 0, "{}", kernel.name());
    assert_eq!(
        map.range(map.n_sections() - 1).1,
        map.n_sites(),
        "{}",
        kernel.name()
    );
    for t in 0..map.n_sections() {
        let (lo, hi) = map.range(t);
        assert!(lo < hi, "{}: empty section {t}", kernel.name());
        if t > 0 {
            assert_eq!(map.range(t - 1).1, lo, "{}: gap before {t}", kernel.name());
        }
        for s in lo..hi {
            assert_eq!(map.section_of(s), t, "{}: site {s}", kernel.name());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// LU segmentation is deterministic: rebuilding the kernel (fresh
    /// golden run) and re-segmenting under 1/4/8-thread pools reproduces
    /// the identical section map — no split, no reorder — and the
    /// per-section content signatures are bit-stable too, since the
    /// incremental ledger persists them.
    #[test]
    fn lu_segmentation_is_deterministic(
        shape_idx in 0usize..LU_SHAPES.len(),
        seed in any::<u64>(),
    ) {
        let (n, block) = LU_SHAPES[shape_idx];
        let kernel = lu(n, block, seed);
        let reference = segment(&kernel);
        assert_well_formed(&reference, &kernel);
        // the DIAG_L phase head opens a section once per k-step whose
        // in-block elimination range is non-empty — every column except
        // the last of each of the n/block diagonal blocks — plus the
        // init prologue
        prop_assert_eq!(
            reference.n_sections(),
            1 + n - n / block,
            "n {} block {}",
            n,
            block
        );

        let golden = kernel.golden();
        let sigs: Vec<u64> = (0..reference.n_sections())
            .map(|t| {
                let (lo, hi) = reference.range(t);
                reference.signature(&golden, t, kernel.code_version(lo, hi))
            })
            .collect();

        for threads in [1usize, 4, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let (rebuilt, resegmented) = pool.install(|| {
                let k = lu(n, block, seed);
                let g = k.golden();
                let m = SectionMap::phases(&g, &k.registry());
                let s: Vec<u64> = (0..m.n_sections())
                    .map(|t| {
                        let (lo, hi) = m.range(t);
                        m.signature(&g, t, k.code_version(lo, hi))
                    })
                    .collect();
                (m, s)
            });
            prop_assert_eq!(&rebuilt, &reference, "{} threads", threads);
            prop_assert_eq!(&resegmented, &sigs, "{} threads", threads);
        }
    }

    /// LU has no data-dependent control flow (no pivoting), so the
    /// section structure is a function of `(n, block)` alone: two
    /// kernels differing only in their input seed segment identically.
    #[test]
    fn lu_sections_ignore_input_data(
        shape_idx in 0usize..LU_SHAPES.len(),
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
    ) {
        let (n, block) = LU_SHAPES[shape_idx];
        let a = segment(&lu(n, block, seed_a));
        let b = segment(&lu(n, block, seed_b));
        prop_assert_eq!(a, b, "n {} block {}", n, block);
    }

    /// FFT six-step stages segment identically across thread counts and
    /// input seeds: always the five stage sections described in the
    /// kernel ([init][transpose1+pass1][twiddle][transpose2+pass2][out]),
    /// with stage boundaries at fixed fractions of the trace for every
    /// power-of-two shape.
    #[test]
    fn fft_stages_segment_identically_across_thread_counts(
        n1_exp in 1u32..4,
        n2_exp in 1u32..4,
        seed in any::<u64>(),
    ) {
        let (n1, n2) = (1usize << n1_exp, 1usize << n2_exp);
        let kernel = fft(n1, n2, seed);
        let reference = segment(&kernel);
        assert_well_formed(&reference, &kernel);
        prop_assert_eq!(reference.n_sections(), 5, "{}x{}", n1, n2);

        for threads in [1usize, 4, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let under_pool = pool.install(|| segment(&fft(n1, n2, seed)));
            prop_assert_eq!(&under_pool, &reference, "{} threads", threads);
        }
        // and across data: the butterfly/bitrev control flow is shape-
        // driven, so a different input signal cannot move a stage boundary
        let other = segment(&fft(n1, n2, seed ^ 0x9e37_79b9_7f4a_7c15));
        prop_assert_eq!(&other, &reference);
    }
}
