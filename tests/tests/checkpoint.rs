//! Checkpoint/resume equivalence: a campaign killed after N chunks and
//! resumed from its ledger must be indistinguishable from one that was
//! never interrupted — identical experiment sets, byte-identical
//! inferred boundaries — while re-executing only the remaining pairs.

use ftb_core::prelude::*;
use ftb_inject::{
    exhaustive_plan, monte_carlo_plan, read_ledger, CampaignBinding, ChunkedCampaign, Experiment,
    MetricsSnapshot,
};
use ftb_kernels::{KernelConfig, MatvecConfig, MatvecKernel};
use ftb_trace::FaultSpec;
use proptest::prelude::*;
use std::path::PathBuf;

fn tiny_kernel() -> MatvecKernel {
    MatvecKernel::new(MatvecConfig {
        n: 4,
        ..MatvecConfig::small()
    })
}

fn binding(inj: &Injector<'_>, plan: &str) -> CampaignBinding {
    CampaignBinding {
        kernel: KernelConfig::Matvec(MatvecConfig {
            n: 4,
            ..MatvecConfig::small()
        }),
        classifier: *inj.classifier(),
        n_sites: inj.n_sites(),
        bits: inj.bits(),
        plan: plan.to_string(),
        bit_prune: None,
        snapshot: None,
    }
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ftb-checkpoint-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn boundary_json(inj: &Injector<'_>, experiments: &[Experiment]) -> String {
    let mut samples = SampleSet::new();
    for &e in experiments {
        samples.insert(e);
    }
    let inference = infer_boundary(inj, &samples, FilterMode::PerSite);
    serde_json::to_string(&inference.boundary).unwrap()
}

/// Run `plan` with a ledger, dropping the campaign after `chunks_before_kill`
/// chunks, then resume from the ledger and run to completion.
fn run_with_kill(
    inj: &Injector<'_>,
    plan: Vec<FaultSpec>,
    plan_desc: &str,
    path: &PathBuf,
    chunk: usize,
    chunks_before_kill: usize,
) -> (Vec<Experiment>, MetricsSnapshot) {
    let _ = std::fs::remove_file(path);
    let mut first = ChunkedCampaign::new(inj, plan.clone(), chunk)
        .with_ledger(path, binding(inj, plan_desc), false)
        .unwrap();
    for _ in 0..chunks_before_kill {
        if first.step().unwrap() == 0 {
            break;
        }
    }
    drop(first); // the "kill": no graceful shutdown, the ledger is all that survives

    let mut resumed = ChunkedCampaign::new(inj, plan, chunk)
        .with_ledger(path, binding(inj, plan_desc), true)
        .unwrap();
    resumed.run_to_completion().unwrap();
    let metrics = resumed.metrics();
    (resumed.into_experiments(), metrics)
}

#[test]
fn dropped_and_resumed_exhaustive_matches_uninterrupted() {
    let k = tiny_kernel();
    let inj = Injector::new(&k, Classifier::new(1e-6));
    let plan = exhaustive_plan(inj.n_sites(), inj.bits());
    let total = plan.len();

    // uninterrupted reference
    let mut full = ChunkedCampaign::new(&inj, plan.clone(), 64);
    full.run_to_completion().unwrap();
    let reference = full.into_experiments();

    // killed after 3 chunks of 64, then resumed
    let path = tmp("acceptance.jsonl");
    let (resumed, metrics) = run_with_kill(&inj, plan, "exhaustive", &path, 64, 3);

    // identical experiment sets…
    assert_eq!(reference, resumed);
    // …byte-identical inferred boundaries…
    assert_eq!(
        boundary_json(&inj, &reference),
        boundary_json(&inj, &resumed)
    );
    // …and the resumed run re-executed only the remaining pairs
    assert_eq!(metrics.resumed, 3 * 64);
    assert_eq!(metrics.executed, (total - 3 * 64) as u64);
    assert_eq!(metrics.completed, total as u64);

    // the finished ledger holds the full campaign
    let rec = read_ledger(&path).unwrap();
    assert_eq!(rec.experiments, reference);
}

#[test]
fn resume_tolerates_torn_final_record() {
    let k = tiny_kernel();
    let inj = Injector::new(&k, Classifier::new(1e-6));
    let plan = exhaustive_plan(inj.n_sites(), inj.bits());
    let path = tmp("torn-resume.jsonl");
    let _ = std::fs::remove_file(&path);

    let mut first = ChunkedCampaign::new(&inj, plan.clone(), 100)
        .with_ledger(&path, binding(&inj, "exhaustive"), false)
        .unwrap();
    first.step().unwrap();
    first.step().unwrap();
    drop(first);

    // a crash mid-write leaves half a record with no newline
    use std::io::Write as _;
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .unwrap();
    f.write_all(b"{\"site\":3,\"bit\":9,\"inj").unwrap();
    drop(f);

    let mut resumed = ChunkedCampaign::new(&inj, plan, 100)
        .with_ledger(&path, binding(&inj, "exhaustive"), true)
        .unwrap();
    assert_eq!(resumed.metrics().resumed, 200, "torn record must not count");
    resumed.run_to_completion().unwrap();
    assert_eq!(resumed.into_exhaustive(), inj.exhaustive());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For any seed, sample count, chunk size, and kill point, the
    /// dropped-and-resumed Monte-Carlo campaign equals the uninterrupted
    /// one: same experiments, same inferred boundary bytes, and only the
    /// tail is re-executed.
    #[test]
    fn resumed_campaign_equals_uninterrupted(
        seed in 0u64..10_000,
        n in 120u64..260,
        chunk in 16usize..64,
        kill_after in 1usize..5,
    ) {
        let k = tiny_kernel();
        let inj = Injector::new(&k, Classifier::new(1e-6));
        let plan = monte_carlo_plan(inj.n_sites(), inj.bits(), n, seed);
        let desc = format!("monte-carlo n={n} seed={seed}");

        let mut full = ChunkedCampaign::new(&inj, plan.clone(), chunk);
        full.run_to_completion().unwrap();
        let reference = full.into_experiments();

        let path = tmp(&format!("prop-{seed}-{n}-{chunk}-{kill_after}.jsonl"));
        let (resumed, metrics) = run_with_kill(&inj, plan, &desc, &path, chunk, kill_after);
        let _ = std::fs::remove_file(&path);

        prop_assert_eq!(&reference, &resumed);
        prop_assert_eq!(
            boundary_json(&inj, &reference),
            boundary_json(&inj, &resumed)
        );
        let expected_resumed = (chunk * kill_after).min(n as usize) as u64;
        prop_assert_eq!(metrics.resumed, expected_resumed);
        prop_assert_eq!(metrics.executed, n - expected_resumed);
    }
}

// ---------------------------------------------------------------- CLI level

fn cli(args: &[&str]) -> String {
    let raw: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let parsed = ftb_cli::parse(&raw).unwrap();
    ftb_cli::commands::dispatch(&parsed).unwrap()
}

#[test]
fn cli_campaign_resume_after_simulated_crash_matches_full_run() {
    let ledger = tmp("cli-ledger.jsonl");
    let metrics_path = tmp("cli-metrics.json");
    let _ = std::fs::remove_file(&ledger);
    let lp = ledger.to_str().unwrap();
    let mp = metrics_path.to_str().unwrap();

    let base = [
        "campaign",
        "--kernel",
        "matvec",
        "--n",
        "4",
        "--samples",
        "200",
        "--seed",
        "9",
    ];

    // full run with a ledger
    let mut with_ledger = base.to_vec();
    with_ledger.extend(["--checkpoint", lp]);
    let full_out = cli(&with_ledger);

    // simulate a crash at 100 records: header + 100 lines + a torn tail
    let text = std::fs::read_to_string(&ledger).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 201, "header + 200 records");
    let mut crashed = lines[..101].join("\n");
    crashed.push_str("\n{\"site\":2,\"bit\"");
    std::fs::write(&ledger, crashed).unwrap();

    // resume; stdout must match the uninterrupted run exactly
    let mut resume = base.to_vec();
    resume.extend(["--checkpoint", lp, "--resume", "--metrics-out", mp]);
    let resumed_out = cli(&resume);
    assert_eq!(full_out, resumed_out);

    let metrics: MetricsSnapshot =
        serde_json::from_str(&std::fs::read_to_string(&metrics_path).unwrap()).unwrap();
    assert_eq!(metrics.resumed, 100);
    assert_eq!(metrics.executed, 100);
    assert_eq!(metrics.total, 200);
    assert_eq!(metrics.masked + metrics.sdc + metrics.crash, 200);

    let _ = std::fs::remove_file(&ledger);
    let _ = std::fs::remove_file(&metrics_path);
}

/// End-to-end across extraction paths: a streamed campaign killed
/// mid-run and resumed must produce a ledger **byte-identical** to an
/// uninterrupted buffered run of the same campaign — the extraction
/// mode is a pure performance choice, invisible in every artefact.
#[test]
fn cli_streamed_resume_ledger_matches_uninterrupted_buffered_byte_for_byte() {
    let buffered_ledger = tmp("cli-xtr-buffered.jsonl");
    let streamed_ledger = tmp("cli-xtr-streamed.jsonl");
    let _ = std::fs::remove_file(&buffered_ledger);
    let _ = std::fs::remove_file(&streamed_ledger);
    let bl = buffered_ledger.to_str().unwrap();
    let sl = streamed_ledger.to_str().unwrap();

    let base = [
        "campaign",
        "--kernel",
        "matvec",
        "--n",
        "4",
        "--samples",
        "180",
        "--seed",
        "21",
    ];

    // uninterrupted buffered reference
    let mut buffered = base.to_vec();
    buffered.extend(["--extraction", "buffered", "--checkpoint", bl]);
    let buffered_out = cli(&buffered);

    // streamed run, crashed at 90 records (torn tail), then resumed
    let mut streamed = base.to_vec();
    streamed.extend(["--extraction", "streamed", "--checkpoint", sl]);
    let _ = cli(&streamed);
    let text = std::fs::read_to_string(&streamed_ledger).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 181, "header + 180 records");
    let mut crashed = lines[..91].join("\n");
    crashed.push_str("\n{\"site\":1,\"bit\"");
    std::fs::write(&streamed_ledger, crashed).unwrap();

    let mut resume = base.to_vec();
    resume.extend(["--extraction", "streamed", "--checkpoint", sl, "--resume"]);
    let resumed_out = cli(&resume);

    assert_eq!(buffered_out, resumed_out, "reports must be identical");
    assert_eq!(
        std::fs::read(&buffered_ledger).unwrap(),
        std::fs::read(&streamed_ledger).unwrap(),
        "ledgers must be byte-identical across extraction paths"
    );

    let _ = std::fs::remove_file(&buffered_ledger);
    let _ = std::fs::remove_file(&streamed_ledger);
}

#[test]
fn cli_resume_rejects_different_campaign() {
    let ledger = tmp("cli-mismatch.jsonl");
    let _ = std::fs::remove_file(&ledger);
    let lp = ledger.to_str().unwrap();

    cli(&[
        "campaign",
        "--kernel",
        "matvec",
        "--n",
        "4",
        "--samples",
        "50",
        "--checkpoint",
        lp,
    ]);

    // same ledger, different seed ⇒ different plan ⇒ must be refused
    let raw: Vec<String> = [
        "campaign",
        "--kernel",
        "matvec",
        "--n",
        "4",
        "--samples",
        "50",
        "--seed",
        "77",
        "--checkpoint",
        lp,
        "--resume",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let parsed = ftb_cli::parse(&raw).unwrap();
    let err = ftb_cli::commands::dispatch(&parsed).unwrap_err();
    assert!(
        err.0.contains("different campaign"),
        "unexpected error: {}",
        err.0
    );
    let _ = std::fs::remove_file(&ledger);
}

#[test]
fn cli_adaptive_checkpoint_roundtrips() {
    let cp = tmp("cli-adaptive.json");
    let metrics_path = tmp("cli-adaptive-metrics.json");
    let _ = std::fs::remove_file(&cp);
    let cpp = cp.to_str().unwrap();
    let mp = metrics_path.to_str().unwrap();

    let base = ["adaptive", "--kernel", "matvec", "--n", "6", "--seed", "11"];
    let reference = cli(&base);

    // run with per-round checkpointing, then resume from the final state:
    // the sampler must recognise the run as complete and reproduce the
    // same report without new experiments
    let mut with_cp = base.to_vec();
    with_cp.extend(["--checkpoint", cpp]);
    let first = cli(&with_cp);
    assert_eq!(reference, first);
    assert!(cp.exists(), "per-round checkpoint must be written");

    let mut resume = base.to_vec();
    resume.extend(["--checkpoint", cpp, "--resume", "--metrics-out", mp]);
    let resumed = cli(&resume);
    assert_eq!(reference, resumed);

    let metrics: MetricsSnapshot =
        serde_json::from_str(&std::fs::read_to_string(&metrics_path).unwrap()).unwrap();
    assert_eq!(
        metrics.executed, 0,
        "resuming a finished adaptive run must re-execute nothing"
    );
    assert!(metrics.resumed > 0);

    let _ = std::fs::remove_file(&cp);
    let _ = std::fs::remove_file(&metrics_path);
}
