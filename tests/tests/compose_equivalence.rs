//! Differential harness for the compositional analyzer: composed
//! boundaries vs exhaustive ground truth, vs the monolithic inferred
//! boundary, across every propagation-extraction path and thread count.

use ftb_core::prelude::*;
use ftb_core::{compose_analysis, ComposeConfig};
use ftb_inject::{Classifier, ExtractionMode, Injector};
use ftb_integration::tiny_suite;
use ftb_kernels::KernelConfig;

/// The jacobi / gemm / cg members of the tiny suite.
fn compose_suite() -> Vec<(KernelConfig, f64)> {
    tiny_suite()
        .into_iter()
        .filter(|(k, _)| matches!(k.name(), "jacobi" | "gemm" | "cg"))
        .collect()
}

fn cfg(tol: f64) -> ComposeConfig {
    ComposeConfig {
        rate: 0.4,
        seed: 41,
        ..ComposeConfig::new(tol)
    }
}

/// Per-site smallest SDC-causing injected error from exhaustive truth.
fn min_sdc_per_site(inj: &Injector<'_>, truth: &ftb_inject::ExhaustiveResult) -> Vec<f64> {
    let golden = inj.golden();
    (0..golden.n_sites())
        .map(|site| {
            let errs = golden.flip_errors(site);
            (0..truth.bits)
                .filter(|&bit| truth.outcome(site, bit).is_sdc())
                .map(|bit| errs[bit as usize])
                .fold(f64::INFINITY, f64::min)
        })
        .collect()
}

#[test]
fn composed_is_precise_and_conservative_vs_exhaustive() {
    for (config, tol) in compose_suite() {
        let kernel = config.build();
        let inj = Injector::new(kernel.as_ref(), Classifier::new(tol));
        let r = compose_analysis(kernel.as_ref(), &config, &inj, &cfg(tol), None).unwrap();
        let truth = inj.exhaustive();

        let eval =
            BoundaryEval::against_exhaustive(&Predictor::new(inj.golden(), &r.boundary), &truth);
        assert!(
            eval.precision >= 0.95,
            "{}: composed precision {:.4} below 0.95",
            config.name(),
            eval.precision
        );

        // conservative: no composed threshold may reach a site's
        // smallest SDC-causing error. CG is the paper's non-monotonic
        // hard case (its Figure 5): a few *local folds* there certify a
        // masked perturbation above an SDC error the campaign never
        // sampled — the same limitation the monolithic inferred
        // boundary has. Composition itself must add no unsoundness, so
        // extrapolated sites are held to zero violations everywhere.
        let min_sdc = min_sdc_per_site(&inj, &truth);
        let violating: Vec<usize> = (0..inj.n_sites())
            .filter(|&s| min_sdc[s].is_finite() && r.boundary.threshold(s) >= min_sdc[s])
            .collect();
        let extrapolated_violations = violating.iter().filter(|&&s| r.extrapolated[s]).count();
        assert_eq!(
            extrapolated_violations,
            0,
            "{}: budget extrapolation certified above a known SDC error",
            config.name()
        );
        if config.name() == "cg" {
            // baseline: the monolithic inferred boundary on the union of
            // the same local experiments. Composition may not violate on
            // more sites than plain Algorithm-1 inference does.
            let mut samples = SampleSet::new();
            for c in r.campaigns.iter().flatten() {
                for e in &c.local_experiments {
                    samples.insert(*e);
                }
            }
            let inferred = infer_boundary(&inj, &samples, FilterMode::PerSite);
            let inferred_violations = (0..inj.n_sites())
                .filter(|&s| min_sdc[s].is_finite() && inferred.boundary.threshold(s) >= min_sdc[s])
                .count();
            assert!(
                violating.len() <= inferred_violations,
                "cg: composed violates on {} sites, monolithic inferred on {}",
                violating.len(),
                inferred_violations
            );
        } else {
            assert_eq!(
                violating.len(),
                0,
                "{}: sites {violating:?} certified at/above a known SDC error",
                config.name()
            );
        }

        // and it is not vacuous: near-total coverage, high recall
        assert!(
            r.boundary.coverage() > 0.9,
            "{}: coverage {:.3}",
            config.name(),
            r.boundary.coverage()
        );
        assert!(
            eval.recall > 0.85,
            "{}: recall {:.3}",
            config.name(),
            eval.recall
        );
    }
}

#[test]
fn composed_never_looser_than_monolithic_inferred_on_local_sites() {
    // The monolithic baseline is fed the union of the per-section LOCAL
    // experiments (inlet probes excluded: they would inject at section
    // t's frontier from section t+1's campaign and change the per-site
    // SDC floors), so both analyses fold the same observations. On every
    // non-extrapolated site, composition can then only discard
    // information (cross-section propagation), never invent it.
    for (config, tol) in compose_suite() {
        let kernel = config.build();
        let inj = Injector::new(kernel.as_ref(), Classifier::new(tol));
        let r = compose_analysis(kernel.as_ref(), &config, &inj, &cfg(tol), None).unwrap();

        let mut samples = SampleSet::new();
        for c in r.campaigns.iter().flatten() {
            for e in &c.local_experiments {
                samples.insert(*e);
            }
        }
        let inferred = infer_boundary(&inj, &samples, FilterMode::PerSite);
        let mut shared = 0usize;
        for site in 0..inj.n_sites() {
            if r.extrapolated[site] {
                continue;
            }
            assert!(
                r.boundary.threshold(site) <= inferred.boundary.threshold(site),
                "{}: composed {} > inferred {} at non-extrapolated site {site}",
                config.name(),
                r.boundary.threshold(site),
                inferred.boundary.threshold(site)
            );
            shared += 1;
        }
        assert!(shared > 0, "{}: no shared sites compared", config.name());
    }
}

#[test]
fn composed_is_identical_across_extraction_paths() {
    for (config, tol) in compose_suite() {
        let kernel = config.build();
        let mut results = Vec::new();
        for mode in [
            ExtractionMode::Buffered,
            ExtractionMode::Lockstep { capacity: 64 },
            ExtractionMode::Streamed,
        ] {
            let inj = Injector::new(kernel.as_ref(), Classifier::new(tol)).with_extraction(mode);
            let r = compose_analysis(kernel.as_ref(), &config, &inj, &cfg(tol), None).unwrap();
            results.push((mode, r));
        }
        let bits =
            |b: &Boundary| -> Vec<u64> { b.thresholds().iter().map(|t| t.to_bits()).collect() };
        let reference = bits(&results[0].1.boundary);
        for (mode, r) in &results[1..] {
            assert_eq!(
                bits(&r.boundary),
                reference,
                "{}: {mode:?} diverged from Buffered",
                config.name()
            );
            assert_eq!(r.summaries, results[0].1.summaries, "{}", config.name());
            assert_eq!(r.budgets, results[0].1.budgets, "{}", config.name());
        }
    }
}

#[test]
fn composed_is_identical_across_thread_counts() {
    let (config, tol) = tiny_suite()
        .into_iter()
        .find(|(k, _)| k.name() == "jacobi")
        .unwrap();
    let kernel = config.build();
    let run = || {
        let inj = Injector::new(kernel.as_ref(), Classifier::new(tol));
        let r = compose_analysis(kernel.as_ref(), &config, &inj, &cfg(tol), None).unwrap();
        (
            r.boundary
                .thresholds()
                .iter()
                .map(|t| t.to_bits())
                .collect::<Vec<u64>>(),
            r.summaries,
        )
    };
    let reference = run();
    for threads in [1usize, 4, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        let got = pool.install(run);
        assert_eq!(got, reference, "{threads} threads diverged");
    }
}
