//! Incremental re-analysis end-to-end: a localized kernel edit re-runs
//! only the dirty section, stale/torn ledgers degrade to re-runs (never
//! to wrong reuse), and secant mode refuses uninstrumented kernels.

use ftb_core::prelude::*;
use ftb_core::{compose_analysis, ComposeConfig, ComposeError};
use ftb_inject::{read_section_ledger, Classifier, Injector};
use ftb_kernels::{CgConfig, CgStorage, JacobiConfig, KernelConfig, SweepTweak};
use std::io::Write as _;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ftb-compose-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    path
}

const TOL: f64 = 1e-4;

fn jacobi_config(tweak: Option<SweepTweak>) -> KernelConfig {
    KernelConfig::Jacobi(JacobiConfig {
        grid: 4,
        sweeps: 10,
        tweak,
        ..JacobiConfig::small()
    })
}

fn cfg() -> ComposeConfig {
    ComposeConfig {
        rate: 0.5,
        seed: 41,
        ..ComposeConfig::new(TOL)
    }
}

#[test]
fn sweep_edit_reruns_exactly_the_dirty_section_at_full_quality() {
    let ledger = tmp("edit.ftbl");

    // first pass: pristine kernel, every section campaigns
    let config = jacobi_config(None);
    let kernel = config.build();
    let inj = Injector::new(kernel.as_ref(), Classifier::new(TOL));
    let first = compose_analysis(kernel.as_ref(), &config, &inj, &cfg(), Some(&ledger)).unwrap();
    let m = first.map.n_sections();
    assert!(m >= 4, "segmentation too coarse to demonstrate anything");
    assert_eq!(first.reran.len(), m);
    assert!(first.n_experiments > 0);

    // the edit: sweep 5 becomes weighted Jacobi. Same dynamic-instruction
    // shape, different arithmetic in exactly one phase.
    let edited = jacobi_config(Some(SweepTweak {
        sweep: 5,
        omega: 0.5,
    }));
    let kernel2 = edited.build();
    let inj2 = Injector::new(kernel2.as_ref(), Classifier::new(TOL));
    let second = compose_analysis(kernel2.as_ref(), &edited, &inj2, &cfg(), Some(&ledger)).unwrap();

    // exactly one dirty section, everything else reused
    assert_eq!(
        second.reran.len(),
        1,
        "edit of one sweep dirtied sections {:?}",
        second.reran
    );
    assert_eq!(second.reused.len(), m - 1);
    let dirty = second.reran[0];
    let (lo, hi) = second.map.range(dirty);
    assert!(
        second.signatures[dirty] != first.signatures[dirty],
        "dirty section's signature did not change"
    );
    for t in 0..m {
        if t != dirty {
            assert_eq!(second.signatures[t], first.signatures[t]);
        }
    }
    assert!(lo < hi);
    assert!(second.n_experiments < first.n_experiments);

    // and the composed boundary built from 1 fresh + (m-1) reused
    // sections still clears the quality gates against fresh truth
    let truth = inj2.exhaustive();
    let eval =
        BoundaryEval::against_exhaustive(&Predictor::new(inj2.golden(), &second.boundary), &truth);
    assert!(
        eval.recall >= 0.9,
        "post-edit recall {:.4} below 0.9",
        eval.recall
    );
    assert!(
        eval.precision >= 0.95,
        "post-edit precision {:.4} below 0.95",
        eval.precision
    );
}

#[test]
fn torn_ledger_tail_costs_exactly_the_lost_sections() {
    let ledger = tmp("torn.ftbl");

    let config = jacobi_config(None);
    let kernel = config.build();
    let inj = Injector::new(kernel.as_ref(), Classifier::new(TOL));
    let first = compose_analysis(kernel.as_ref(), &config, &inj, &cfg(), Some(&ledger)).unwrap();
    let m = first.map.n_sections();

    // tear the tail: drop the last record's final bytes, as a crash
    // mid-append would
    let bytes = std::fs::read(&ledger).unwrap();
    std::fs::write(&ledger, &bytes[..bytes.len() - 7]).unwrap();
    let recovery = read_section_ledger(&ledger).unwrap();
    assert!(recovery.dropped_trailing);
    assert_eq!(recovery.sections.len(), m - 1);

    // re-analysis reuses the valid prefix and re-runs only the lost tail
    let second = compose_analysis(kernel.as_ref(), &config, &inj, &cfg(), Some(&ledger)).unwrap();
    assert_eq!(second.reran, vec![m - 1]);
    assert_eq!(second.reused.len(), m - 1);

    // identical analysis end-to-end: same campaigns, same composition
    assert_eq!(first.summaries, second.summaries);
    assert_eq!(
        first
            .boundary
            .thresholds()
            .iter()
            .map(|t| t.to_bits())
            .collect::<Vec<_>>(),
        second
            .boundary
            .thresholds()
            .iter()
            .map(|t| t.to_bits())
            .collect::<Vec<_>>()
    );

    // and the rewritten ledger is whole again
    let healed = read_section_ledger(&ledger).unwrap();
    assert!(!healed.dropped_trailing);
    assert_eq!(healed.sections.len(), m);
}

#[test]
fn corrupt_ledger_header_is_a_typed_error() {
    let ledger = tmp("corrupt.ftbl");
    let mut f = std::fs::File::create(&ledger).unwrap();
    writeln!(f, "this is not a ledger header").unwrap();
    drop(f);

    let config = jacobi_config(None);
    let kernel = config.build();
    let inj = Injector::new(kernel.as_ref(), Classifier::new(TOL));
    let err = compose_analysis(kernel.as_ref(), &config, &inj, &cfg(), Some(&ledger)).unwrap_err();
    assert!(matches!(err, ComposeError::Ledger(_)), "got {err:?}");
    assert!(err.to_string().contains("ledger"), "unhelpful: {err}");
}

#[test]
fn incompatible_campaign_shape_forces_a_full_rerun() {
    let ledger = tmp("stale.ftbl");

    let config = jacobi_config(None);
    let kernel = config.build();
    let inj = Injector::new(kernel.as_ref(), Classifier::new(TOL));
    let first = compose_analysis(kernel.as_ref(), &config, &inj, &cfg(), Some(&ledger)).unwrap();
    let m = first.map.n_sections();

    // a different sampling plan invalidates every record: reuse across
    // campaign shapes would mix incomparable observations
    let other = ComposeConfig {
        rate: 0.25,
        ..cfg()
    };
    let second = compose_analysis(kernel.as_ref(), &config, &inj, &other, Some(&ledger)).unwrap();
    assert_eq!(second.reran.len(), m, "stale plan must not be reused");
    assert!(second.reused.is_empty());
}

#[test]
fn secant_mode_refuses_uninstrumented_kernels_with_a_clear_error() {
    // the assembled-CSR CG storage path is the one remaining DDG-blind
    // kernel now that lu/fft/stencil/matvec/spmv are instrumented
    let config = KernelConfig::Cg(CgConfig {
        grid: 4,
        max_iters: 50,
        storage: CgStorage::AssembledCsr,
        ..CgConfig::small()
    });
    let kernel = config.build();
    let inj = Injector::new(kernel.as_ref(), Classifier::new(1e-1));
    let secant = ComposeConfig {
        secant: true,
        ..ComposeConfig::new(1e-1)
    };
    let err = compose_analysis(kernel.as_ref(), &config, &inj, &secant, None).unwrap_err();
    assert!(matches!(err, ComposeError::NotInstrumented), "got {err:?}");
    let msg = err.to_string();
    assert!(
        msg.contains("provenance-instrumented"),
        "error must tell the user what is missing: {msg}"
    );
    // fail-fast: the refusal must precede any campaign spend, which we
    // can only observe as it not having touched a ledger
    let ledger = tmp("secant-refused.ftbl");
    let _ = compose_analysis(kernel.as_ref(), &config, &inj, &secant, Some(&ledger)).unwrap_err();
    assert!(!ledger.exists(), "refused run must not create a ledger");
}
