//! Acceptance tests for the zero-injection static boundary analyzer:
//! the ISSUE-3 gates (jacobi precision ≥ 0.95 against a pinned-seed
//! exhaustive campaign; jacobi/gemm/cg all produce a boundary with zero
//! injection experiments) plus DDG determinism across thread counts and
//! extraction modes.

use ftb_core::prelude::*;
use ftb_core::staticbound::StaticBoundError;
use ftb_inject::Injector;
use ftb_kernels::{
    CgConfig, CgKernel, CgStorage, GemmConfig, GemmKernel, JacobiConfig, JacobiKernel, Kernel,
    LuConfig, LuKernel,
};
use ftb_trace::{Ddg, Precision};

fn jacobi_tiny() -> JacobiKernel {
    JacobiKernel::new(JacobiConfig {
        grid: 4,
        sweeps: 10,
        precision: Precision::F64,
        seed: 42,
        fine_grained: false,
        residual_every: 1,
        tweak: None,
    })
}

fn gemm_tiny() -> GemmKernel {
    GemmKernel::new(GemmConfig {
        n: 5,
        ..GemmConfig::small()
    })
}

fn cg_tiny() -> CgKernel {
    CgKernel::new(CgConfig {
        grid: 4,
        max_iters: 100,
        ..CgConfig::small()
    })
}

/// The static pipeline for one kernel: DDG from the golden run, backward
/// pass, validation against a pinned-seed exhaustive campaign. Returns
/// `(validation, n_constrained, n_sites)`.
fn run_static(kernel: &dyn Kernel, tolerance: f64) -> (StaticValidation, usize, usize) {
    let (golden, ddg) = kernel.golden_with_ddg();
    let sb = static_bound(&ddg, &StaticBoundConfig::new(tolerance)).expect("static bound");
    let boundary = sb.boundary();
    assert_eq!(boundary.n_sites(), golden.n_sites());

    let inj = Injector::with_golden(kernel, golden, Classifier::new(tolerance));
    let truth = inj.exhaustive();
    let predictor = Predictor::new(inj.golden(), &boundary);
    let samples = SampleSet::sample_sites(&inj, (inj.n_sites() / 10).max(4), 41);
    let v = validate_static(&predictor, &truth, &samples, inj.golden(), &sb.thresholds);
    (v, sb.n_constrained, inj.n_sites())
}

#[test]
fn jacobi_static_precision_gate() {
    let k = jacobi_tiny();
    let (v, constrained, n_sites) = run_static(&k, 1e-4);
    println!(
        "jacobi: precision {:.4} recall {:.4} uncertainty {:.4} conservative {:.4} slack {:.2} constrained {}/{}",
        v.eval.precision, v.eval.recall, v.uncertainty, v.conservative_fraction, v.median_slack,
        constrained, n_sites
    );
    assert_eq!(v.n_injections_static, 0);
    assert!(
        v.eval.precision >= 0.95,
        "jacobi static precision {} below the 0.95 acceptance gate ({:?})",
        v.eval.precision,
        v.eval
    );
    assert!(v.eval.recall > 0.0, "static bound certified nothing");
    assert!(
        v.conservative_fraction >= 0.95,
        "conservativeness {}",
        v.conservative_fraction
    );
}

#[test]
fn gemm_static_boundary_zero_injections() {
    let k = gemm_tiny();
    let (v, constrained, _) = run_static(&k, 1e-6);
    println!(
        "gemm: precision {:.4} recall {:.4} uncertainty {:.4} conservative {:.4} slack {:.2}",
        v.eval.precision, v.eval.recall, v.uncertainty, v.conservative_fraction, v.median_slack
    );
    assert_eq!(v.n_injections_static, 0);
    assert!(constrained > 0);
    // per-injection GEMM is exactly linear: the secant bounds are exact
    assert_eq!(v.eval.precision, 1.0, "{:?}", v.eval);
    assert!(v.eval.recall > 0.1, "{:?}", v.eval);
}

#[test]
fn cg_static_boundary_zero_injections() {
    let k = cg_tiny();
    let (v, constrained, n_sites) = run_static(&k, 1e-1);
    println!(
        "cg: precision {:.4} recall {:.4} uncertainty {:.4} conservative {:.4} slack {:.2} constrained {}/{}",
        v.eval.precision, v.eval.recall, v.uncertainty, v.conservative_fraction, v.median_slack,
        constrained, n_sites
    );
    assert_eq!(v.n_injections_static, 0);
    assert!(constrained > 0, "no site constrained");
    // CG is genuinely nonlinear (cross terms are the documented caveat);
    // the bound must still be near-conservative and certify something
    assert!(v.eval.recall > 0.0, "{:?}", v.eval);
    assert!(
        v.eval.precision >= 0.8,
        "cg static precision collapsed: {:?}",
        v.eval
    );
}

#[test]
fn formerly_dormant_lu_is_now_instrumented() {
    let k = LuKernel::new(LuConfig::small());
    let (_, ddg) = k.golden_with_ddg();
    assert!(ddg.is_instrumented());
    static_bound(&ddg, &StaticBoundConfig::new(1e-6))
        .expect("instrumented LU must admit a static bound");
}

#[test]
fn assembled_csr_cg_is_rejected_not_miscertified() {
    let k = CgKernel::new(CgConfig {
        storage: CgStorage::AssembledCsr,
        ..CgConfig::small()
    });
    let (_, ddg) = k.golden_with_ddg();
    assert!(
        !ddg.is_instrumented(),
        "CSR-mode CG must not emit a partial (unsound) provenance graph"
    );
    let err = static_bound(&ddg, &StaticBoundConfig::new(1e-6)).unwrap_err();
    assert_eq!(err, StaticBoundError::NotInstrumented);
}

/// DDG construction must be a pure function of the kernel config: same
/// edges regardless of the rayon pool the recording happens under and of
/// the extraction mode any surrounding analysis uses.
#[test]
fn ddg_is_deterministic_across_thread_counts_and_extraction_modes() {
    fn ddg_of(kernel: &dyn Kernel) -> Ddg {
        kernel.golden_with_ddg().1
    }

    let kernels: Vec<Box<dyn Kernel>> = vec![
        Box::new(jacobi_tiny()),
        Box::new(gemm_tiny()),
        Box::new(cg_tiny()),
    ];
    for k in &kernels {
        let reference = ddg_of(k.as_ref());
        assert!(reference.n_edges() > 0, "{}: empty DDG", k.name());

        for threads in [1usize, 2, 4] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let got = pool.install(|| ddg_of(k.as_ref()));
            assert_eq!(
                got,
                reference,
                "{}: DDG differs under {threads}-thread pool",
                k.name()
            );
        }

        for mode in [
            ExtractionMode::Buffered,
            ExtractionMode::Lockstep { capacity: 1024 },
            ExtractionMode::Streamed,
        ] {
            // an analysis in any extraction mode must see the identical
            // graph: extraction concerns faulty-run comparison, never the
            // golden provenance pass
            let inj = Injector::new(k.as_ref(), Classifier::new(1e-4)).with_extraction(mode);
            let _ = inj.run_one(0, 1); // exercise the mode
            let got = ddg_of(k.as_ref());
            assert_eq!(got, reference, "{}: DDG differs under {mode:?}", k.name());
        }
    }
}

/// The same static thresholds must come out of every run, bit for bit.
#[test]
fn static_thresholds_are_deterministic() {
    let k = jacobi_tiny();
    let t1 = static_bound(&k.golden_with_ddg().1, &StaticBoundConfig::new(1e-4))
        .unwrap()
        .thresholds;
    let t2 = static_bound(&k.golden_with_ddg().1, &StaticBoundConfig::new(1e-4))
        .unwrap()
        .thresholds;
    let bits1: Vec<u64> = t1.iter().map(|v| v.to_bits()).collect();
    let bits2: Vec<u64> = t2.iter().map(|v| v.to_bits()).collect();
    assert_eq!(bits1, bits2);
}

/// Provenance mode must not perturb the golden run itself.
#[test]
fn ddg_mode_golden_matches_plain_golden() {
    for k in [
        Box::new(jacobi_tiny()) as Box<dyn Kernel>,
        Box::new(gemm_tiny()),
        Box::new(cg_tiny()),
    ] {
        let plain = k.golden();
        let (with_ddg, _) = k.golden_with_ddg();
        assert_eq!(plain.values, with_ddg.values, "{}", k.name());
        assert_eq!(plain.branches, with_ddg.branches, "{}", k.name());
        assert_eq!(plain.output, with_ddg.output, "{}", k.name());
    }
}
