//! Profile the resiliency of a conjugate gradient solver, region by
//! region — the workflow of an HPC application programmer deciding where
//! their code is vulnerable to silent data corruption.
//!
//! Uses the adaptive sampler (§3.4) to build the boundary, then reports
//! per-static-instruction and per-region vulnerability, reproducing the
//! paper's qualitative findings: zero-initialisation stores are nearly
//! immune, the one-shot setup region is the most vulnerable, and the
//! iterative solve is naturally resilient (CG re-converges around most
//! perturbations).
//!
//! Run with: `cargo run --release -p ftb-examples --bin cg_resilience`

use ftb_core::prelude::*;
use ftb_kernels::{CgConfig, CgKernel, Kernel};
use ftb_report::Table;

fn main() {
    let kernel = CgKernel::new(CgConfig::small());
    let analysis = Analysis::new(&kernel, Classifier::new(1e-1));
    let n = analysis.n_sites();
    println!(
        "CG on a {0}x{0} Poisson mesh: {1} dynamic instructions",
        kernel.config().grid,
        n
    );

    // adaptive sampling: spends experiments where information is scarce
    let result = analysis.adaptive(&AdaptiveConfig::default());
    println!(
        "adaptive sampling ran {} experiments ({:.1}% of an exhaustive campaign) in {} rounds",
        result.samples.len(),
        result.samples.len() as f64 / analysis.golden().n_experiments() as f64 * 100.0,
        result.rounds.len()
    );

    // per-site predicted SDC ratio from the boundary (+ known outcomes)
    let predictor = analysis.predictor(&result.inference.boundary);
    let per_site = predictor.sdc_ratio_per_site(Some(&result.samples));

    // aggregate by static instruction via the region API
    let registry = kernel.registry();
    let rows = by_static_instruction(analysis.golden(), &registry, &per_site)
        .expect("per_site comes from the same golden run");

    let mut table = Table::new(&["static instruction", "region", "dyn sites", "predicted SDC"]);
    for r in &rows {
        table.row(&[
            r.name.to_string(),
            r.region.label().to_string(),
            r.dynamic_sites.to_string(),
            format!("{:.2}%", r.mean * 100.0),
        ]);
    }
    println!("\nper-static-instruction vulnerability (most vulnerable first):\n");
    print!("{}", table.render());

    println!(
        "\nreading: '{}' is the code to protect first; the zero-init stores tolerate \
         almost anything",
        rows[0].name
    );
}
