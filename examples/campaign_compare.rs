//! Traditional statistical fault injection vs the fault tolerance
//! boundary, on the same experiment budget (the paper's Figure 1 as a
//! runnable comparison).
//!
//! The Monte-Carlo campaign answers one question — the overall SDC ratio
//! with a confidence interval — and leaves the per-instruction picture
//! blank. The boundary method turns the same budget into a full-
//! resolution per-instruction prediction, and can *also* report the
//! overall ratio.
//!
//! Run with: `cargo run --release -p ftb-examples --bin campaign_compare`

use ftb_core::prelude::*;
use ftb_kernels::{FftConfig, FftKernel};
use ftb_report::Table;

fn main() {
    let kernel = FftKernel::new(FftConfig {
        n1: 8,
        n2: 8,
        ..FftConfig::small()
    });
    let analysis = Analysis::new(&kernel, Classifier::new(1.0));
    let n = analysis.n_sites();
    let truth = analysis.exhaustive();
    let golden_sdc = truth.overall_sdc_ratio();
    println!(
        "FFT-64: {} sites, {} experiments in the full space, true SDC ratio {:.2}%\n",
        n,
        truth.n_experiments(),
        golden_sdc * 100.0
    );

    let mut table = Table::new(&[
        "budget (runs)",
        "MC overall estimate",
        "MC sites observed",
        "FTB overall estimate",
        "FTB sites predicted",
        "FTB recall",
    ]);

    for site_frac in [0.01, 0.05, 0.2] {
        let budget_sites = ((site_frac * n as f64).round() as usize).max(1);
        let budget = budget_sites * 64;

        // baseline: uniform Monte Carlo over the same number of runs
        let mc = analysis.monte_carlo(budget as u64, 0.95, 11);

        // boundary: full-site sampling + inference on the same budget
        let samples = SampleSet::sample_sites(analysis.injector(), budget_sites, 11);
        let inference = analysis.infer(&samples, FilterMode::PerSite);
        let predictor = analysis.predictor(&inference.boundary);
        let ftb_overall = predictor.overall_sdc_ratio(Some(&samples));
        let eval = analysis.evaluate(&inference.boundary, &truth);
        let covered = (0..n)
            .filter(|&s| inference.boundary.threshold(s) > 0.0)
            .count();

        table.row(&[
            budget.to_string(),
            format!(
                "{:.2}% [{:.2}, {:.2}]",
                mc.sdc_ratio() * 100.0,
                mc.sdc_ci.lo * 100.0,
                mc.sdc_ci.hi * 100.0
            ),
            format!("{}/{}", mc.distinct_sites, n),
            format!("{:.2}%", ftb_overall * 100.0),
            format!("{covered}/{n}"),
            format!("{:.1}%", eval.recall * 100.0),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nsame budget, different knowledge: the campaign gives one number; the boundary \
         gives a per-instruction vulnerability map covering sites it never injected"
    );
}
