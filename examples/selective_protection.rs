//! Selective protection: the downstream use case motivating the paper.
//!
//! Full instruction duplication / triple modular redundancy is too
//! expensive for HPC; the economic alternative is *partial* protection of
//! only the vulnerable instructions. This example uses the fault
//! tolerance boundary to rank dynamic instructions by predicted
//! vulnerability, "protects" the top K% (a protected site's flips are
//! assumed corrected by duplication), and measures the real SDC reduction
//! against ground truth — compared with protecting the same budget of
//! randomly chosen sites.
//!
//! Run with: `cargo run --release -p ftb-examples --bin selective_protection`

use ftb_core::prelude::*;
use ftb_kernels::{CgConfig, CgKernel};
use ftb_report::Table;
use ftb_stats::sampling::{sample_without_replacement, seeded_rng};

fn main() {
    // CG has strongly heterogeneous vulnerability (the right-hand-side
    // setup is ~10x more fragile than the iterative updates), which is
    // exactly when guided placement pays off
    let kernel = CgKernel::new(CgConfig::small());
    let analysis = Analysis::new(&kernel, Classifier::new(1e-1));
    let n = analysis.n_sites();

    // boundary from a 5% uniform sample
    let samples = analysis.sample_uniform(0.05, 7);
    let inference = analysis.infer(&samples, FilterMode::PerSite);
    let predictor = analysis.predictor(&inference.boundary);

    // ground truth for the evaluation only
    let truth = analysis.exhaustive();
    let base = truth.overall_sdc_ratio();
    println!(
        "CG {} sites, baseline SDC ratio {:.2}% (boundary built from {} experiments)",
        n,
        base * 100.0,
        samples.len()
    );

    let mut table = Table::new(&[
        "budget",
        "boundary-guided residual SDC",
        "random-placement residual SDC",
    ]);
    let mut rng = seeded_rng(99);
    for budget_pct in [5usize, 10, 20, 40] {
        let k = n * budget_pct / 100;

        let guided = ProtectionPlan::rank(&predictor, Some(&samples), k);
        let random = ProtectionPlan {
            sites: sample_without_replacement(n, k, &mut rng),
            predicted_sdc: guided.predicted_sdc.clone(),
            predicted_sdc_removed: 0.0,
        };

        table.row(&[
            format!("{budget_pct}% of sites"),
            format!(
                "{:.2}% (-{:.0}%)",
                guided.residual_sdc(&truth) * 100.0,
                guided.sdc_reduction(&truth) * 100.0
            ),
            format!(
                "{:.2}% (-{:.0}%)",
                random.residual_sdc(&truth) * 100.0,
                random.sdc_reduction(&truth) * 100.0
            ),
        ]);
    }
    println!("\nresidual SDC after protecting a budget of sites:\n");
    print!("{}", table.render());
    println!(
        "\nthe boundary concentrates the protection budget on genuinely vulnerable \
         instructions; random placement wastes most of it on naturally resilient ones"
    );
}
