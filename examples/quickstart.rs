//! Quickstart: the whole fault-tolerance-boundary workflow in ~60 lines.
//!
//! 1. build an instrumented kernel (a 2-D Jacobi stencil);
//! 2. record its golden run;
//! 3. run a *small* sampled fault-injection campaign;
//! 4. infer the fault tolerance boundary from the masked experiments'
//!    error propagation (Algorithm 1 + filter);
//! 5. predict the outcome of bit flips that were never tested, and
//!    self-verify the boundary with the §3.6 uncertainty metric.
//!
//! Run with: `cargo run --release -p ftb-examples --bin quickstart`

use ftb_core::prelude::*;
use ftb_kernels::{StencilConfig, StencilKernel};

fn main() {
    // 1. an instrumented kernel: every store is a fault-injection site
    let kernel = StencilKernel::new(StencilConfig::small());

    // 2. the analysis session records the golden (fault-free) run and
    //    classifies outcomes against an output tolerance T (L∞ norm)
    let analysis = Analysis::new(&kernel, Classifier::new(1e-6));
    println!(
        "kernel: {} dynamic instructions = {} single-bit-flip experiments",
        analysis.n_sites(),
        analysis.golden().n_experiments()
    );

    // 3. sample 5% of the dynamic instructions (all bits of each)
    let samples = analysis.sample_uniform(0.05, 42);
    let (masked, sdc, crash) = samples.counts();
    println!(
        "sampled {} experiments at {} sites: {masked} masked, {sdc} SDC, {crash} crash",
        samples.len(),
        samples.distinct_sites()
    );

    // 4. infer the boundary from masked-run error propagation
    let inference = analysis.infer(&samples, FilterMode::PerSite);
    println!(
        "boundary covers {:.1}% of all sites with a positive threshold",
        inference.boundary.coverage() * 100.0
    );

    // 5. predict an untested experiment — no execution needed
    let predictor = analysis.predictor(&inference.boundary);
    let site = analysis.n_sites() / 2;
    for bit in [0u8, 30, 52, 62, 63] {
        println!(
            "  site {site} bit {bit:2}: predicted {:?}",
            predictor.predict(site, bit)
        );
    }

    // self-verification (§3.6): precision of the boundary over its own
    // sample set — no exhaustive campaign required
    let uncertainty = analysis.uncertainty(&inference.boundary, &samples);
    println!(
        "self-verified uncertainty (≈ precision): {:.2}%",
        uncertainty * 100.0
    );

    // because this kernel is small, we can afford the ground truth and
    // check that the self-verification was honest
    let truth = analysis.exhaustive();
    let eval = analysis.evaluate(&inference.boundary, &truth);
    println!(
        "ground truth: precision {:.2}%, recall {:.2}% over {} experiments",
        eval.precision * 100.0,
        eval.recall * 100.0,
        eval.n_evaluated
    );
}
